// Multi-cloud execution and cross-cloud failover (ISSUE 10): the Fig. 9
// Twitter Follower Analysis workload across 1-3 independent clouds and
// the three placement policies, then under an injected whole-cloud
// outage. Two bars are enforced (nonzero exit fails the sweep):
//
//   * under a permanent outage of the home cloud, kSingleCloud must
//     fail honestly with pool-exhausted — the pinned policy never
//     silently migrates — while kSpread over the same two clouds and
//     the same fault must COMPLETE the workload via at least one
//     journaled cross-cloud failover;
//   * every verified cell must reproduce the reference interpreter's
//     outputs bit for bit, fault or no fault.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cloud.hpp"
#include "cluster/fault_plan.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"
#include "protocol/multicloud.hpp"

namespace clusterbft::bench {
namespace {

constexpr std::uint64_t kEdges = 30000;
constexpr std::uint64_t kUsers = 2000;

/// One multi-cloud deployment: n clouds of 16 nodes each sharing the
/// simulator and DFS, the Fig. 9 twitter edges preloaded.
struct CloudWorld {
  cluster::EventSim sim;
  mapreduce::Dfs dfs{256 << 10};
  std::vector<std::unique_ptr<cluster::Cloud>> clouds;
  std::unique_ptr<protocol::MultiCloudSeam> seam;
  std::unique_ptr<core::ClusterBft> controller;

  explicit CloudWorld(std::size_t n,
                      std::vector<std::uint64_t> prices = {}) {
    workloads::TwitterConfig tw;
    tw.num_edges = kEdges;
    tw.num_users = kUsers;
    dfs.write("twitter/edges", workloads::generate_twitter_edges(tw));
    std::vector<cluster::Cloud*> raw;
    for (std::size_t i = 0; i < n; ++i) {
      cluster::CloudProfile p;
      p.name = "cloud" + std::to_string(i);
      p.num_nodes = 16;
      p.slots_per_node = 3;
      p.seed = 7 + i;
      if (i < prices.size()) p.price_milli = prices[i];
      clouds.push_back(
          std::make_unique<cluster::Cloud>(i, sim, dfs, std::move(p)));
      raw.push_back(clouds.back().get());
    }
    seam = std::make_unique<protocol::MultiCloudSeam>(raw);
    controller = std::make_unique<core::ClusterBft>(
        sim, dfs, seam->transport, seam->programs);
  }

  core::ScriptResult run(const core::ClientRequest& req) {
    return controller->execute(req);
  }
};

core::ClientRequest fig9_request(const std::string& name,
                                 core::Placement placement) {
  core::ClientRequest req = baseline::cluster_bft(
      workloads::twitter_follower_analysis(), name, /*f=*/1, /*r=*/2, 1);
  req.placement = placement;
  return req;
}

const char* to_tag(core::Placement p) {
  switch (p) {
    case core::Placement::kSingleCloud: return "single_cloud";
    case core::Placement::kSpread: return "spread";
    case core::Placement::kCheapestFirst: return "cheapest_first";
  }
  return "?";
}

void check_golden(const core::ScriptResult& res, const char* cell) {
  const auto plan =
      dataflow::parse_script(workloads::twitter_follower_analysis());
  workloads::TwitterConfig tw;
  tw.num_edges = kEdges;
  tw.num_users = kUsers;
  const auto golden = dataflow::interpret(
      plan, {{"twitter/edges", workloads::generate_twitter_edges(tw)}});
  for (const auto& [path, grel] : golden) {
    const auto it = res.outputs.find(path);
    if (it == res.outputs.end() ||
        it->second.sorted_rows() != grel.sorted_rows()) {
      std::fprintf(stderr, "bench_multicloud: %s output %s diverges from "
                   "the reference interpreter\n", cell, path.c_str());
      std::exit(1);
    }
  }
}

int bench_main() {
  print_header("Multi-cloud placement and cross-cloud failover",
               "ISSUE 10: Fig. 9 workload across independent clouds");
  BenchJson sink("multicloud");

  // ---- placement-policy sweep, fault-free -------------------------
  std::printf("\nfault-free, n clouds x placement policy (16 nodes each):\n");
  std::printf("  %-8s %-16s %10s %6s %10s\n", "clouds", "placement",
              "latency(s)", "runs", "failovers");
  for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                              std::size_t{3}}) {
    for (const core::Placement p :
         {core::Placement::kSingleCloud, core::Placement::kSpread,
          core::Placement::kCheapestFirst}) {
      CloudWorld w(n, {1500, 900, 1200});
      const auto res = w.run(fig9_request("mc", p));
      if (!res.verified) {
        std::fprintf(stderr, "bench_multicloud: fault-free cell "
                     "(%zu clouds, %s) did not verify\n", n, to_tag(p));
        return 1;
      }
      check_golden(res, to_tag(p));
      if (res.metrics.cloud_failovers != 0) {
        std::fprintf(stderr, "bench_multicloud: fault-free cell "
                     "(%zu clouds, %s) failed over %zu times\n",
                     n, to_tag(p), res.metrics.cloud_failovers);
        return 1;
      }
      std::printf("  %-8zu %-16s %10.2f %6zu %10zu\n", n, to_tag(p),
                  res.metrics.latency_s, res.metrics.runs,
                  res.metrics.cloud_failovers);
      const std::string tag =
          std::string(to_tag(p)) + "_n" + std::to_string(n);
      sink.add(tag + "_latency", res.metrics.latency_s, "sim_s");
      sink.add(tag + "_runs", static_cast<double>(res.metrics.runs),
               "count");
    }
  }

  // ---- whole-cloud outage: the exit-code bar ----------------------
  // The same fault for both cells: cloud 0 (the home cloud of the
  // pinned policy) partitions permanently at t=0.2s, mid-chain.
  auto outage = [] {
    cluster::FaultPlan faults;
    faults.cloud_outages.push_back({0.2, 0 /* never heals */, 0});
    return faults;
  };
  auto tighten = [](core::ClientRequest req) {
    // Under a dead cloud the verifier timeout is the failover latency
    // floor; the default 300 s would dominate the latency column.
    req.verifier_timeout_s = 10.0;
    req.max_rerun_waves = 4;
    return req;
  };

  std::printf("\npermanent outage of cloud 0 at t=0.2s, 2 clouds:\n");

  CloudWorld pinned(2);
  pinned.seam->arm(pinned.sim, outage());
  const auto pinned_res = pinned.run(
      tighten(fig9_request("mc-pinned", core::Placement::kSingleCloud)));
  std::printf("  %-16s verified=%d failure=%s\n", "single_cloud",
              pinned_res.verified ? 1 : 0, to_string(pinned_res.failure));
  if (pinned_res.verified ||
      pinned_res.failure != core::FailureReason::kPoolExhausted ||
      !pinned_res.outputs.empty()) {
    std::fprintf(stderr, "bench_multicloud: BAR FAILED — kSingleCloud "
                 "under a dead home cloud must report pool-exhausted and "
                 "promote nothing (got verified=%d failure=%s)\n",
                 pinned_res.verified ? 1 : 0,
                 to_string(pinned_res.failure));
    return 1;
  }

  CloudWorld spread(2);
  spread.seam->arm(spread.sim, outage());
  const auto spread_res = spread.run(
      tighten(fig9_request("mc-failover", core::Placement::kSpread)));
  std::printf("  %-16s verified=%d latency %.2f sim_s failovers %zu\n",
              "spread", spread_res.verified ? 1 : 0,
              spread_res.metrics.latency_s,
              spread_res.metrics.cloud_failovers);
  if (!spread_res.verified || spread_res.metrics.cloud_failovers == 0) {
    std::fprintf(stderr, "bench_multicloud: BAR FAILED — kSpread must "
                 "complete the workload over the surviving cloud via "
                 "failover (verified=%d failovers=%zu)\n",
                 spread_res.verified ? 1 : 0,
                 spread_res.metrics.cloud_failovers);
    return 1;
  }
  check_golden(spread_res, "spread_outage");
  sink.add("outage_spread_latency", spread_res.metrics.latency_s, "sim_s");
  sink.add("outage_spread_failovers",
           static_cast<double>(spread_res.metrics.cloud_failovers), "count");
  sink.add("outage_pinned_pool_exhausted", 1.0, "bool");

  std::printf("\nbench_multicloud: both bars hold — failover completes "
              "the workload where the pinned policy reports pool "
              "exhaustion\n");
  return 0;
}

}  // namespace
}  // namespace clusterbft::bench

int main() { return clusterbft::bench::bench_main(); }
