// Shared setup for the paper-reproduction benchmark harnesses: a fresh
// simulated cluster per configuration, loaded with the experiment's
// synthetic workload.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/presets.hpp"
#include "cluster/event_sim.hpp"
#include "cluster/tracker.hpp"
#include "core/controller.hpp"
#include "protocol/seam.hpp"
#include "mapreduce/dfs.hpp"
#include "workloads/airline.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"
#include "workloads/weather.hpp"

namespace clusterbft::bench {

/// One self-contained simulated deployment. Fresh per measurement so
/// configurations never share scheduler or suspicion state.
struct World {
  cluster::EventSim sim;
  mapreduce::Dfs dfs;
  std::unique_ptr<cluster::ExecutionTracker> tracker;
  std::unique_ptr<protocol::LoopbackSeam> seam;
  std::unique_ptr<core::ClusterBft> controller;

  /// 256 KiB blocks keep map-task fan-out (and with it each replica's
  /// pinned-node footprint) proportionate to the 32-node testbed.
  explicit World(cluster::TrackerConfig cfg = {},
                 std::uint64_t block_size = 256 << 10)
      : dfs(block_size) {
    tracker = std::make_unique<cluster::ExecutionTracker>(sim, dfs, cfg);
    seam = std::make_unique<protocol::LoopbackSeam>(*tracker);
    controller = std::make_unique<core::ClusterBft>(sim, dfs, seam->transport,
                                                    seam->programs);
  }

  core::ScriptResult run(const core::ClientRequest& req) {
    return controller->execute(req);
  }
};

inline cluster::TrackerConfig paper_cluster(std::size_t nodes = 32,
                                            std::size_t slots = 3) {
  // The Vicci testbed of §6.1/6.2: 32 untrusted nodes. Slots per node as
  // in §5.1 ("typically 3-4 slots ... on a node with 4 CPU cores").
  cluster::TrackerConfig cfg;
  cfg.num_nodes = nodes;
  cfg.slots_per_node = slots;
  return cfg;
}

inline void load_twitter(World& w, std::uint64_t edges = 60000,
                         std::uint64_t users = 4000) {
  workloads::TwitterConfig tw;
  tw.num_edges = edges;
  tw.num_users = users;
  w.dfs.write("twitter/edges", workloads::generate_twitter_edges(tw));
}

inline void load_airline(World& w, std::uint64_t flights = 50000) {
  workloads::AirlineConfig a;
  a.num_flights = flights;
  w.dfs.write("airline/flights", workloads::generate_flights(a));
}

inline void load_weather(World& w, std::uint64_t stations = 1500,
                         std::uint64_t readings = 30) {
  workloads::WeatherConfig cfg;
  cfg.num_stations = stations;
  cfg.readings_per_station = readings;
  w.dfs.write("weather/gsod", workloads::generate_weather(cfg));
}

/// Machine-readable result sink: collects (metric, value, unit, seed,
/// threads) rows and writes them as `BENCH_<name>.json` in the working
/// directory when destroyed (or on an explicit write()). Every bench_*
/// target funnels its headline numbers through one of these so CI and
/// later PRs can diff the perf trajectory without scraping stdout.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  ~BenchJson() { write(); }

  void add(std::string metric, double value, std::string unit,
           std::uint64_t seed = 0, std::size_t threads = 0) {
    rows_.push_back(Row{std::move(metric), value, std::move(unit), seed,
                        threads});
  }

  void write() {
    if (written_) return;
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f,
                   "  {\"bench\": \"%s\", \"metric\": \"%s\", "
                   "\"value\": %.17g, \"unit\": \"%s\", "
                   "\"seed\": %llu, \"threads\": %zu}%s\n",
                   name_.c_str(), r.metric.c_str(), r.value, r.unit.c_str(),
                   static_cast<unsigned long long>(r.seed), r.threads,
                   i + 1 == rows_.size() ? "" : ",");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  struct Row {
    std::string metric;
    double value = 0;
    std::string unit;
    std::uint64_t seed = 0;
    std::size_t threads = 0;
  };
  std::string name_;
  std::vector<Row> rows_;
  bool written_ = false;
};

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s)\n", title, paper_ref);
  std::printf("================================================================\n");
}

}  // namespace clusterbft::bench
