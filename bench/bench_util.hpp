// Shared setup for the paper-reproduction benchmark harnesses: a fresh
// simulated cluster per configuration, loaded with the experiment's
// synthetic workload.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "baseline/presets.hpp"
#include "cluster/event_sim.hpp"
#include "cluster/tracker.hpp"
#include "core/controller.hpp"
#include "mapreduce/dfs.hpp"
#include "workloads/airline.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"
#include "workloads/weather.hpp"

namespace clusterbft::bench {

/// One self-contained simulated deployment. Fresh per measurement so
/// configurations never share scheduler or suspicion state.
struct World {
  cluster::EventSim sim;
  mapreduce::Dfs dfs;
  std::unique_ptr<cluster::ExecutionTracker> tracker;
  std::unique_ptr<core::ClusterBft> controller;

  /// 256 KiB blocks keep map-task fan-out (and with it each replica's
  /// pinned-node footprint) proportionate to the 32-node testbed.
  explicit World(cluster::TrackerConfig cfg = {},
                 std::uint64_t block_size = 256 << 10)
      : dfs(block_size) {
    tracker = std::make_unique<cluster::ExecutionTracker>(sim, dfs, cfg);
    controller = std::make_unique<core::ClusterBft>(sim, dfs, *tracker);
  }

  core::ScriptResult run(const core::ClientRequest& req) {
    return controller->execute(req);
  }
};

inline cluster::TrackerConfig paper_cluster(std::size_t nodes = 32,
                                            std::size_t slots = 3) {
  // The Vicci testbed of §6.1/6.2: 32 untrusted nodes. Slots per node as
  // in §5.1 ("typically 3-4 slots ... on a node with 4 CPU cores").
  cluster::TrackerConfig cfg;
  cfg.num_nodes = nodes;
  cfg.slots_per_node = slots;
  return cfg;
}

inline void load_twitter(World& w, std::uint64_t edges = 60000,
                         std::uint64_t users = 4000) {
  workloads::TwitterConfig tw;
  tw.num_edges = edges;
  tw.num_users = users;
  w.dfs.write("twitter/edges", workloads::generate_twitter_edges(tw));
}

inline void load_airline(World& w, std::uint64_t flights = 50000) {
  workloads::AirlineConfig a;
  a.num_flights = flights;
  w.dfs.write("airline/flights", workloads::generate_flights(a));
}

inline void load_weather(World& w, std::uint64_t stations = 1500,
                         std::uint64_t readings = 30) {
  workloads::WeatherConfig cfg;
  cfg.num_stations = stations;
  cfg.readings_per_station = readings;
  w.dfs.write("weather/gsod", workloads::generate_weather(cfg));
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s)\n", title, paper_ref);
  std::printf("================================================================\n");
}

}  // namespace clusterbft::bench
