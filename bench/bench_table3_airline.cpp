// Table 3: ClusterBFT (C) vs final-output-only verification (P) on the
// RITA airline top-20 multi-store query, with one node set up to always
// produce commission failures, f = 1, 2 verification points, and
// replication degrees r = 2, 3 (two cases), 4.
//
//   - r=3 case 1: all replicas answer within the verifier timeout;
//   - r=3 case 2: one correct replica is too slow (a crawling node), so
//     the verifier times out and reschedules with a higher timeout.
//
// All numbers are multipliers over a single unreplicated Pure Pig run,
// exactly like the paper's table. Paper shapes to check: with
// rescheduling (r=2, r=3 case 2) C beats P by ~23% latency because only
// the unverified suffix re-executes; without rescheduling (r=3 case 1,
// r=4) C and P are close, C up to 14% cheaper on I/O.
#include "bench_util.hpp"

using namespace clusterbft;
using namespace clusterbft::bench;

namespace {

struct Row {
  double latency = 0;
  double cpu = 0;
  double file_read = 0;
  double file_write = 0;
  double hdfs_write = 0;
};

struct Scenario {
  const char* name;
  std::size_t r;
  bool slow_replica;  // case 2: one crawling (but correct) node set
};

Row run_config(bool clusterbft_mode, const Scenario& sc,
               const std::string& script, double base_latency) {
  cluster::TrackerConfig cfg = paper_cluster();
  // Node 0 always produces commission failures "resulting in an incorrect
  // digest" (§6.2): it lies to the verifier rather than corrupting the
  // data lineage. (Data-corrupting adversaries are exercised by the
  // ablation bench and the integration tests.)
  cfg.policies[0] = cluster::AdversaryPolicy{.commission_prob = 1.0,
                                             .lie_in_digest = true};
  if (sc.slow_replica) {
    // Case 2: one node stops responding, so one (otherwise correct)
    // replica misses the verifier timeout and the script is rescheduled
    // with a higher timeout — the paper's description verbatim.
    cfg.policies[1] = cluster::AdversaryPolicy{.omission_prob = 1.0};
  }
  World w(cfg);
  load_airline(w);

  core::ClientRequest req =
      clusterbft_mode
          ? baseline::cluster_bft(script, "C", /*f=*/1, sc.r, /*n=*/2)
          : baseline::full_output_bft(script, "P", /*f=*/1, sc.r);
  // The verifier allows a margin over a fault-free run before declaring
  // omission (the paper tunes this the same way).
  req.verifier_timeout_s = 1.5 * base_latency;

  const auto res = w.run(req);
  if (!res.verified) {
    std::fprintf(stderr, "WARNING: %s %s did not verify\n",
                 clusterbft_mode ? "C" : "P", sc.name);
  }
  Row row;
  row.latency = res.metrics.latency_s;
  row.cpu = res.metrics.cpu_seconds;
  row.file_read = static_cast<double>(res.metrics.file_read);
  row.file_write = static_cast<double>(res.metrics.file_write);
  row.hdfs_write = static_cast<double>(res.metrics.hdfs_write);
  return row;
}

}  // namespace

int main() {
  print_header("ClusterBFT vs final-output verification under Byzantine "
               "failures (airline top-20)",
               "Table 3");
  BenchJson sink("table3");

  const std::string script = workloads::airline_top20_analysis();

  // Baseline: single Pure Pig run, no faults.
  Row base;
  {
    World w(paper_cluster());
    load_airline(w);
    const auto res = w.run(baseline::pure_pig(script, "pure"));
    base.latency = res.metrics.latency_s;
    base.cpu = res.metrics.cpu_seconds;
    base.file_read = static_cast<double>(res.metrics.file_read);
    base.file_write = static_cast<double>(res.metrics.file_write);
    base.hdfs_write = static_cast<double>(res.metrics.hdfs_write);
  }
  std::printf("baseline (standard Pig, single run): latency %.1fs cpu %.1fs\n\n",
              base.latency, base.cpu);

  const Scenario scenarios[] = {
      {"r=2", 2, false},
      {"r=3,case1", 3, false},
      {"r=3,case2", 3, true},
      {"r=4", 4, false},
  };

  std::printf("%-22s", "Measure");
  for (const Scenario& sc : scenarios) std::printf("| %-6s C     P ", sc.name);
  std::printf("\n");

  Row c_rows[4], p_rows[4];
  for (int i = 0; i < 4; ++i) {
    c_rows[i] = run_config(true, scenarios[i], script, base.latency);
    p_rows[i] = run_config(false, scenarios[i], script, base.latency);
    sink.add(std::string(scenarios[i].name) + "_C_latency_x",
             c_rows[i].latency / base.latency, "x");
    sink.add(std::string(scenarios[i].name) + "_P_latency_x",
             p_rows[i].latency / base.latency, "x");
    sink.add(std::string(scenarios[i].name) + "_C_cpu_x",
             c_rows[i].cpu / base.cpu, "x");
    sink.add(std::string(scenarios[i].name) + "_P_cpu_x",
             p_rows[i].cpu / base.cpu, "x");
  }

  auto print_measure = [&](const char* name, double Row::*field,
                           double base_value) {
    std::printf("%-22s", name);
    for (int i = 0; i < 4; ++i) {
      std::printf("|   %5.1fx %5.1fx ", (c_rows[i].*field) / base_value,
                  (p_rows[i].*field) / base_value);
    }
    std::printf("\n");
  };
  print_measure("Latency", &Row::latency, base.latency);
  print_measure("CPU time spent", &Row::cpu, base.cpu);
  print_measure("File read (bytes)", &Row::file_read, base.file_read);
  print_measure("File write (bytes)", &Row::file_write, base.file_write);
  print_measure("HDFS write (bytes)", &Row::hdfs_write, base.hdfs_write);

  std::printf(
      "\npaper: | r=2: C 1.6x/P 2.1x latency | r=3 case1: 1.1x/1.1x |\n"
      "r=3 case2: 1.6x/2.1x | r=4: 1.1x/1.1x | — C beats P by ~23%% when\n"
      "rescheduling happens, because C reruns only the unverified suffix.\n");
  return 0;
}
