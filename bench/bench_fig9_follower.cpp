// Figure 9: latency of the Twitter Follower Analysis under Pure Pig,
// Single Execution (1 replica, digests computed) and BFT Execution
// (4 replicas, f=1, digests compared), for 1-3 verification points.
//
// Paper result: minimal overhead of 8%; worst case 9% / 14% / 19% for
// 1 / 2 / 3 verification points. We reproduce the shape: single-digit
// overhead for Single Execution, growing mildly with the number of
// points; BFT Execution costs ~4x CPU but its latency overhead over a
// single run stays bounded because the replicas run in parallel.
#include "bench_util.hpp"

using namespace clusterbft;
using namespace clusterbft::bench;

int main() {
  print_header("Twitter Follower Analysis latency", "Fig. 9");

  const std::string script = workloads::twitter_follower_analysis();

  auto fresh = [] {
    World w(paper_cluster());
    load_twitter(w);
    return w;
  };

  // Baseline: Pure Pig (no digests, no replication).
  double pure_latency = 0;
  {
    World w = fresh();
    const auto res = w.run(baseline::pure_pig(script, "pure"));
    pure_latency = res.metrics.latency_s;
    std::printf("%-28s latency %7.2f s   (baseline)\n", "Pure Pig",
                pure_latency);
  }

  std::printf("%-28s %10s %10s %12s %10s\n", "configuration", "latency(s)",
              "overhead", "cpu(s)", "replicas");
  for (std::size_t n : {1u, 2u, 3u}) {
    {
      World w = fresh();
      // Like the paper's bars: digests exactly at the n points (final
      // output digesting is the n-th point, not an extra implicit one).
      auto req = baseline::single_execution(script, "single", n);
      req.verify_final_output = false;
      const auto res = w.run(req);
      std::printf("Single Execution, n=%zu       %10.2f %9.1f%% %12.2f %10d\n",
                  n, res.metrics.latency_s,
                  100.0 * (res.metrics.latency_s / pure_latency - 1.0),
                  res.metrics.cpu_seconds, 1);
    }
    {
      World w = fresh();
      auto req = baseline::cluster_bft(script, "bft", /*f=*/1, /*r=*/4, n);
      req.verify_final_output = false;
      const auto res = w.run(req);
      std::printf("BFT Execution,    n=%zu       %10.2f %9.1f%% %12.2f %10d\n",
                  n, res.metrics.latency_s,
                  100.0 * (res.metrics.latency_s / pure_latency - 1.0),
                  res.metrics.cpu_seconds, 4);
    }
  }
  std::printf(
      "\npaper: Single Execution overhead ~8%%; worst case 9%%/14%%/19%% for\n"
      "1/2/3 verification points; BFT Execution latency stays close to\n"
      "Single Execution because replicas run in parallel.\n");
  return 0;
}
