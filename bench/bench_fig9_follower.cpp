// Figure 9: latency of the Twitter Follower Analysis under Pure Pig,
// Single Execution (1 replica, digests computed) and BFT Execution
// (4 replicas, f=1, digests compared), for 1-3 verification points.
//
// Paper result: minimal overhead of 8%; worst case 9% / 14% / 19% for
// 1 / 2 / 3 verification points. We reproduce the shape: single-digit
// overhead for Single Execution, growing mildly with the number of
// points; BFT Execution costs ~4x CPU but its latency overhead over a
// single run stays bounded because the replicas run in parallel.
//
// A second section measures real wall-clock time (not simulated time) of
// the r=4 BFT run with the sequential engine vs. a 4-thread worker pool:
// the parallel backend must change nothing but the wall clock.
#include <chrono>
#include <thread>

#include "bench_util.hpp"

using namespace clusterbft;
using namespace clusterbft::bench;

int main() {
  print_header("Twitter Follower Analysis latency", "Fig. 9");
  BenchJson sink("fig9");

  const std::string script = workloads::twitter_follower_analysis();

  auto fresh = [] {
    World w(paper_cluster());
    load_twitter(w);
    return w;
  };

  // Baseline: Pure Pig (no digests, no replication).
  double pure_latency = 0;
  {
    World w = fresh();
    const auto res = w.run(baseline::pure_pig(script, "pure"));
    pure_latency = res.metrics.latency_s;
    std::printf("%-28s latency %7.2f s   (baseline)\n", "Pure Pig",
                pure_latency);
    sink.add("pure_pig_latency", pure_latency, "sim_s");
  }

  std::printf("%-28s %10s %10s %12s %10s\n", "configuration", "latency(s)",
              "overhead", "cpu(s)", "replicas");
  for (std::size_t n : {1u, 2u, 3u}) {
    {
      World w = fresh();
      // Like the paper's bars: digests exactly at the n points (final
      // output digesting is the n-th point, not an extra implicit one).
      auto req = baseline::single_execution(script, "single", n);
      req.verify_final_output = false;
      const auto res = w.run(req);
      const double over = 100.0 * (res.metrics.latency_s / pure_latency - 1.0);
      std::printf("Single Execution, n=%zu       %10.2f %9.1f%% %12.2f %10d\n",
                  n, res.metrics.latency_s, over, res.metrics.cpu_seconds, 1);
      sink.add("single_n" + std::to_string(n) + "_latency",
               res.metrics.latency_s, "sim_s");
      sink.add("single_n" + std::to_string(n) + "_overhead", over, "percent");
    }
    {
      World w = fresh();
      auto req = baseline::cluster_bft(script, "bft", /*f=*/1, /*r=*/4, n);
      req.verify_final_output = false;
      const auto res = w.run(req);
      const double over = 100.0 * (res.metrics.latency_s / pure_latency - 1.0);
      std::printf("BFT Execution,    n=%zu       %10.2f %9.1f%% %12.2f %10d\n",
                  n, res.metrics.latency_s, over, res.metrics.cpu_seconds, 4);
      sink.add("bft_n" + std::to_string(n) + "_latency",
               res.metrics.latency_s, "sim_s");
      sink.add("bft_n" + std::to_string(n) + "_overhead", over, "percent");
      sink.add("bft_n" + std::to_string(n) + "_cpu", res.metrics.cpu_seconds,
               "sim_s");
    }
  }
  std::printf(
      "\npaper: Single Execution overhead ~8%%; worst case 9%%/14%%/19%% for\n"
      "1/2/3 verification points; BFT Execution latency stays close to\n"
      "Single Execution because replicas run in parallel.\n");

  // ------------------------------------------------------------------
  // Parallel task-execution engine: wall-clock speedup at r=4. Same
  // deployment, same request, same (bit-identical) results — only the
  // number of worker threads differs. Larger input than the sim section
  // so the run is dominated by map/reduce payload compute.
  print_header("Parallel engine wall-clock, BFT r=4", "ISSUE 2 tentpole");

  auto timed_run = [&script](std::size_t threads) {
    cluster::TrackerConfig cfg = paper_cluster();
    cfg.threads = threads;
    World w(cfg);
    load_twitter(w, /*edges=*/240000, /*users=*/16000);
    auto req = baseline::cluster_bft(script, "par", /*f=*/1, /*r=*/4, 1);
    req.verify_final_output = false;
    double best = 1e300;
    double digests = 0;
    for (int rep = 0; rep < 2; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto res = w.run(req);
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
      digests = static_cast<double>(res.metrics.digest_reports);
    }
    std::printf("threads=%zu  wall %7.3f s   (%g digest reports)\n", threads,
                best, digests);
    return best;
  };

  const double wall_seq = timed_run(0);
  const double wall_par = timed_run(4);
  const double speedup = wall_seq / wall_par;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("speedup at 4 threads: %.2fx  (%u core(s) available)\n",
              speedup, cores);
  if (cores < 2) {
    std::printf(
        "note: this machine exposes a single core; wall-clock speedup\n"
        "requires >=2 cores — the recorded figure measures pool overhead\n"
        "only. Re-run on multi-core hardware for the scaling result.\n");
  }
  sink.add("wall_clock_sequential", wall_seq, "s", 0, 0);
  sink.add("wall_clock_4threads", wall_par, "s", 0, 4);
  sink.add("speedup_4threads", speedup, "x", 0, 4);
  sink.add("hardware_concurrency", static_cast<double>(cores), "cores");

  // ------------------------------------------------------------------
  // Pipelined DAG execution: serial dispatch (pipeline_width=1, one job
  // per replica chain at a time, digests compared inline) vs pipelined
  // dispatch (unbounded width, offline comparison on a 4-thread pool) on
  // the multi-store airline DAG, whose three branches give the scheduler
  // real job-level parallelism. Digests, outputs and every verification
  // decision are bit-identical between the two (asserted by
  // parallel_exec_test); only simulated latency and wall clock move.
  print_header("Pipelined DAG execution, BFT r=2", "ISSUE 4 tentpole");

  const std::string airline = workloads::airline_top20_analysis();
  auto piped_run = [&airline](std::size_t width, std::size_t vthreads,
                              double* wall) {
    World w(paper_cluster());
    load_airline(w);
    auto req = baseline::cluster_bft(airline, "pipe", /*f=*/1, /*r=*/2, 2);
    req.pipeline_width = width;
    req.verifier_threads = vthreads;
    req.decision_latency_s = 2.0;  // one control-tier agreement round
    double best_wall = 1e300;
    double latency = 0;
    for (int rep = 0; rep < 2; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto res = w.run(req);
      const auto t1 = std::chrono::steady_clock::now();
      best_wall =
          std::min(best_wall, std::chrono::duration<double>(t1 - t0).count());
      latency = res.metrics.latency_s;
    }
    *wall = best_wall;
    return latency;
  };

  double wall_serial = 0;
  double wall_piped = 0;
  const double lat_serial = piped_run(/*width=*/1, /*vthreads=*/0,
                                      &wall_serial);
  const double lat_piped = piped_run(/*width=*/0, /*vthreads=*/4,
                                     &wall_piped);
  std::printf("serial    (width 1)  latency %7.2f sim_s   wall %7.3f s\n",
              lat_serial, wall_serial);
  std::printf("pipelined (width 0)  latency %7.2f sim_s   wall %7.3f s\n",
              lat_piped, wall_piped);
  std::printf("pipelining gain: %.2fx sim latency, %.2fx wall clock\n",
              lat_serial / lat_piped, wall_serial / wall_piped);
  sink.add("pipeline_serial_latency", lat_serial, "sim_s");
  sink.add("pipeline_piped_latency", lat_piped, "sim_s");
  sink.add("pipeline_serial_wall", wall_serial, "s", 0, 0);
  sink.add("pipeline_piped_wall", wall_piped, "s", 0, 4);
  sink.add("pipeline_sim_speedup", lat_serial / lat_piped, "x");
  return 0;
}
