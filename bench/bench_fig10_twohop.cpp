// Figure 10: digest computation overhead for the Twitter Two Hop
// Analysis with verification points at specific operators: Join,
// Project, Filter, Join&Filter, and Join&Project&Filter.
//
// Paper result: Single Execution vs BFT Execution (4 replicas) bars per
// placement; digesting the Join output (the largest intermediate) costs
// the most, Filter the least; combinations stack.
#include "bench_util.hpp"

using namespace clusterbft;
using namespace clusterbft::bench;

int main() {
  print_header("Twitter Two Hop Analysis digest overhead", "Fig. 10");
  BenchJson sink("fig10");

  const std::string script = workloads::twitter_two_hop_analysis();

  // Aliases in workloads::twitter_two_hop_analysis():
  //   fa = filter, j = join, hops = project (FOREACH).
  struct Placement {
    const char* label;
    std::vector<std::string> aliases;
  };
  const Placement placements[] = {
      {"Join", {"j"}},
      {"Project", {"hops"}},
      {"Filter", {"fa"}},
      {"J&F", {"j", "fa"}},
      {"J,P&F", {"j", "hops", "fa"}},
  };

  auto fresh = [] {
    World w(paper_cluster());
    load_twitter(w, /*edges=*/30000, /*users=*/2500);
    return w;
  };

  double pure_latency = 0;
  {
    World w = fresh();
    const auto res = w.run(baseline::pure_pig(script, "pure"));
    pure_latency = res.metrics.latency_s;
    std::printf("%-10s Pure Pig latency %7.2f s (baseline)\n", "",
                pure_latency);
    sink.add("pure_pig_latency", pure_latency, "sim_s");
  }

  std::printf("%-10s %14s %14s %16s\n", "placement", "single(s)", "bft(s)",
              "digested bytes");
  for (const Placement& p : placements) {
    double single_lat = 0, bft_lat = 0;
    std::uint64_t digested = 0;
    {
      World w = fresh();
      auto req = baseline::single_execution(script, "single", 0);
      req.explicit_vp_aliases = p.aliases;
      req.verify_final_output = false;
      const auto res = w.run(req);
      single_lat = res.metrics.latency_s;
      digested = res.metrics.digested;
    }
    {
      World w = fresh();
      auto req = baseline::cluster_bft(script, "bft", 1, 4, 0);
      req.explicit_vp_aliases = p.aliases;
      req.verify_final_output = false;
      const auto res = w.run(req);
      bft_lat = res.metrics.latency_s;
    }
    std::printf("%-10s %14.2f %14.2f %16llu\n", p.label, single_lat, bft_lat,
                static_cast<unsigned long long>(digested));
    sink.add(std::string(p.label) + "_single_latency", single_lat, "sim_s");
    sink.add(std::string(p.label) + "_bft_latency", bft_lat, "sim_s");
    sink.add(std::string(p.label) + "_digested",
             static_cast<double>(digested), "bytes");
  }
  std::printf(
      "\npaper: digesting at the Join costs most (largest stream), Filter\n"
      "least; BFT Execution tracks Single Execution since replicas run in\n"
      "parallel and comparison is offline.\n");
  return 0;
}
