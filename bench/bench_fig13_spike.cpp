// Figure 13: suspicion-count spikes. Before |D| reaches f it can happen
// that replicas of several *large* jobs return commission faults at once,
// putting every node of those big clusters under suspicion — a spike that
// the analyzer prunes within a few more completions.
//
// Setup per the paper: "multiple large clusters with faulty nodes" — an
// all-large job mix with f=2 and moderate commission probability.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "sim/isolation_sim.hpp"

using namespace clusterbft;
using namespace clusterbft::bench;

int main() {
  print_header("Suspicion spikes from large faulty clusters", "Fig. 13");
  BenchJson sink("fig13");

  sim::IsolationSimConfig cfg;
  cfg.f = 2;
  cfg.replicas = 7;
  cfg.commission_prob = 0.35;
  cfg.ratio_large = 1;  // large jobs only: 20-30 slots per replica
  cfg.ratio_medium = 0;
  cfg.ratio_small = 0;
  cfg.seed = 7;
  cfg.max_completed_jobs = 100000;
  cfg.max_time = 150;
  const auto res = sim::run_isolation_sim(cfg);

  std::printf("%-6s %6s %6s %6s %8s %9s\n", "time", "low", "med", "high",
              "s>0", "analyzer");
  std::size_t peak = 0, final_suspects = 0;
  for (const auto& snap : res.timeline) {
    const std::size_t total = snap.low + snap.med + snap.high;
    peak = std::max(peak, snap.analyzer_suspects);
    final_suspects = snap.analyzer_suspects;
    if (snap.time % 5 != 0) continue;
    std::printf("%-6zu %6zu %6zu %6zu %8zu %9zu\n", snap.time, snap.low,
                snap.med, snap.high, total, snap.analyzer_suspects);
  }
  std::printf("\npeak analyzer suspects : %zu\n", peak);
  std::printf("final analyzer suspects: %zu\n", final_suspects);
  std::printf("analyzer suspect set : %zu node(s)\n",
              res.final_suspects.size());
  sink.add("peak_analyzer_suspects", static_cast<double>(peak), "nodes",
           cfg.seed);
  sink.add("final_analyzer_suspects", static_cast<double>(final_suspects),
           "nodes", cfg.seed);
  std::printf(
      "\npaper: spikes of dozens of suspected nodes appear when two large\n"
      "faulty clusters overlap before |D| = f; within a few more runs the\n"
      "list is pruned and the truly faulty nodes dominate (t > 35).\n");
  return 0;
}
