// Front-end throughput bench (ISSUE 8): requests/s and service-latency
// percentiles for the multi-tenant front end at 1k and 10k queued
// clients over the mixed twitter/weather/airline stream, with the
// verified-result cache ablated on/off.
//
// Half of the stream re-issues an earlier request's script verbatim
// (workloads::mixed_tenant_workload repeated_fraction = 0.5), so with
// the cache ON every repeated sub-graph adopts the cached verified
// evidence instead of re-running — the ISSUE's acceptance bar is a
// >= 1.5x simulated-time throughput gain at that repeat rate, and this
// bench FAILS (exits nonzero, aborting the sweep) if the gain ever
// drops below the bar: all reported numbers are simulated time, fully
// deterministic, so a miss is a regression, never noise.
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "frontend/frontend.hpp"
#include "workloads/mixed.hpp"

using namespace clusterbft;
using namespace clusterbft::bench;

namespace {

struct Outcome {
  frontend::ServiceMetrics service;
  std::size_t cache_insertions = 0;
};

Outcome run_stream(std::size_t clients, bool use_cache) {
  World w(paper_cluster());
  // Modest per-script inputs: the subject under test is the service
  // layer (admission, queueing, cache adoption), not map-task fan-out.
  load_twitter(w, /*edges=*/800, /*users=*/120);
  load_weather(w, /*stations=*/60, /*readings=*/4);
  load_airline(w, /*flights=*/500);

  frontend::FrontendOptions opts;
  opts.max_concurrent = 8;
  opts.per_tenant_inflight = 4;
  frontend::Frontend fe(*w.controller, w.sim, opts);

  for (const workloads::TenantRequest& tr :
       workloads::mixed_tenant_workload(clients, /*seed=*/42,
                                        /*repeated_fraction=*/0.5)) {
    frontend::Submission sub;
    sub.request = baseline::cluster_bft(tr.script, tr.name, 1, 2, 2);
    sub.request.verifier_timeout_s = 1e9;  // queueing must not fake omission
    sub.request.use_result_cache = use_cache;
    sub.tenant = tr.tenant;
    sub.weight = tr.weight;
    sub.priority = tr.priority;
    fe.submit(std::move(sub));
  }
  fe.run();

  Outcome out;
  out.service = fe.metrics();
  out.cache_insertions = w.controller->cache_stats().insertions;
  if (out.service.completed != out.service.submitted) {
    std::fprintf(stderr,
                 "FATAL: %zu of %zu requests failed verification\n",
                 out.service.failed, out.service.submitted);
    std::exit(1);
  }
  return out;
}

void report(BenchJson& sink, const char* tag, std::size_t clients,
            const Outcome& off, const Outcome& on) {
  const double speedup =
      on.service.requests_per_s / off.service.requests_per_s;
  std::printf("  %5zu clients  cache off: %7.2f req/sim_s  p50 %6.1fs  "
              "p99 %6.1fs\n",
              clients, off.service.requests_per_s, off.service.p50_latency_s,
              off.service.p99_latency_s);
  std::printf("  %5s          cache on : %7.2f req/sim_s  p50 %6.1fs  "
              "p99 %6.1fs  (%zu adoptions, %.2fx)\n",
              "", on.service.requests_per_s, on.service.p50_latency_s,
              on.service.p99_latency_s, on.service.cache_hits, speedup);

  sink.add(std::string(tag) + "_rps_cache_off", off.service.requests_per_s,
           "req_per_sim_s");
  sink.add(std::string(tag) + "_rps_cache_on", on.service.requests_per_s,
           "req_per_sim_s");
  sink.add(std::string(tag) + "_p50_cache_off", off.service.p50_latency_s,
           "sim_s");
  sink.add(std::string(tag) + "_p99_cache_off", off.service.p99_latency_s,
           "sim_s");
  sink.add(std::string(tag) + "_p50_cache_on", on.service.p50_latency_s,
           "sim_s");
  sink.add(std::string(tag) + "_p99_cache_on", on.service.p99_latency_s,
           "sim_s");
  sink.add(std::string(tag) + "_cache_hits",
           static_cast<double>(on.service.cache_hits), "count");
  sink.add(std::string(tag) + "_cache_speedup", speedup, "x");

  if (speedup < 1.5) {
    std::fprintf(stderr,
                 "FATAL: cache speedup %.2fx below the 1.5x bar at %zu "
                 "clients (sim-time, deterministic: this is a regression)\n",
                 speedup, clients);
    std::exit(1);
  }
}

}  // namespace

int main() {
  print_header("Multi-tenant front end throughput",
               "ISSUE 8: requests/s + latency percentiles, cache ablation");
  BenchJson sink("frontend");

  std::printf("mixed twitter/weather/airline stream, 3 tenants (WRR 3:2:1),\n"
              "50%% verbatim repeats, r=2 f=1, 8 concurrent sessions\n\n");

  for (const std::size_t clients : {std::size_t{1000}, std::size_t{10000}}) {
    const Outcome off = run_stream(clients, /*use_cache=*/false);
    const Outcome on = run_stream(clients, /*use_cache=*/true);
    report(sink, clients == 1000 ? "c1k" : "c10k", clients, off, on);
  }

  return 0;
}
