// Ablation benches for ClusterBFT's design choices (DESIGN.md):
//
//  A. Marker placement: graph-analyzer-chosen verification points vs a
//     naive placement right below the loads, under a digest-lying node —
//     mid-chain points verify prefixes early, shrinking rerun scope.
//  B. Digest granularity d: verifier traffic vs corruption localisation.
//  C. Segment rerun vs whole-script rerun (ClusterBFT vs "P"), under the
//     two adversary flavours: digest lying (data intact — ClusterBFT's
//     sweet spot) and data corruption (taints the whole chain suffix, so
//     the gap narrows).
#include <cstdio>

#include "bench_util.hpp"

using namespace clusterbft;
using namespace clusterbft::bench;

namespace {

cluster::TrackerConfig bad_node(bool lie) {
  cluster::TrackerConfig cfg = paper_cluster();
  cfg.policies[0] = cluster::AdversaryPolicy{.commission_prob = 1.0,
                                             .lie_in_digest = lie};
  return cfg;
}

struct Outcome {
  double latency = 0;
  std::size_t runs = 0;
  std::size_t reports = 0;
  bool verified = false;
};

Outcome run_airline(core::ClientRequest req, cluster::TrackerConfig cfg) {
  World w(cfg);
  load_airline(w);
  const auto res = w.run(req);
  return {res.metrics.latency_s, res.metrics.runs,
          res.metrics.digest_reports, res.verified};
}

Outcome run_weather(core::ClientRequest req, cluster::TrackerConfig cfg) {
  World w(cfg);
  load_weather(w);
  const auto res = w.run(req);
  return {res.metrics.latency_s, res.metrics.runs,
          res.metrics.digest_reports, res.verified};
}

}  // namespace

int main() {
  print_header("Design-choice ablations", "DESIGN.md ablation index");
  BenchJson sink("ablation");

  const std::string airline = workloads::airline_top20_analysis();
  const std::string weather = workloads::weather_average_analysis();

  // ---- A: marker placement -------------------------------------------
  std::printf("[A] verification-point placement (digest-lying node, r=2)\n");
  {
    const Outcome marker = run_airline(
        baseline::cluster_bft(airline, "marker", 1, 2, 2), bad_node(true));
    auto naive_req = baseline::cluster_bft(airline, "naive", 1, 2, 0);
    naive_req.explicit_vp_aliases = {"good"};  // right below the load
    const Outcome naive = run_airline(naive_req, bad_node(true));
    std::printf("    marker-placed : latency %6.1fs, %2zu job replicas\n",
                marker.latency, marker.runs);
    std::printf("    naive (top)   : latency %6.1fs, %2zu job replicas\n",
                naive.latency, naive.runs);
    sink.add("A_marker_latency", marker.latency, "sim_s");
    sink.add("A_naive_latency", naive.latency, "sim_s");
  }

  // ---- B: digest granularity ------------------------------------------
  std::printf(
      "\n[B] digest granularity d (fault-free, r=2, 2 points): finer d\n"
      "    localises corruption to a d-record chunk but multiplies the\n"
      "    verifier messages the control tier must order\n");
  for (std::uint64_t d : {0ull, 10000ull, 1000ull, 100ull}) {
    const Outcome o = run_weather(
        baseline::cluster_bft(weather, "gran", 1, 2, 2, d), paper_cluster());
    std::printf("    d=%-6llu digest reports %6zu   latency %6.2fs\n",
                static_cast<unsigned long long>(d), o.reports, o.latency);
    sink.add("B_d" + std::to_string(d) + "_reports",
             static_cast<double>(o.reports), "reports");
  }

  // ---- D: offline vs synchronous verification (challenge C2) ----------
  std::printf(
      "\n[D] offline comparison vs per-stage synchronisation\n"
      "    (airline chain, fault-free, r=3, digests everywhere), sweeping\n"
      "    the control-tier decision cost: cheap decisions let per-stage\n"
      "    barriers average out stragglers, but every real agreement round\n"
      "    lands on naive BFT's critical path at each of the 7 stages\n");
  for (double decision : {0.0, 2.0, 10.0, 30.0}) {
    double naive_lat = 0, offline_lat = 0;
    {
      World w(paper_cluster());
      load_airline(w);
      auto req = baseline::naive_bft(airline, "naive", 1, 3);
      req.decision_latency_s = decision;
      naive_lat = w.run(req).metrics.latency_s;
    }
    {
      World w(paper_cluster());
      load_airline(w);
      auto req = baseline::individual(airline, "offl", 1, 3);
      req.decision_latency_s = decision;
      offline_lat = w.run(req).metrics.latency_s;
    }
    std::printf("    decision=%4.0fs  naive %7.1fs   offline %7.1fs\n",
                decision, naive_lat, offline_lat);
    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "D_dec%.0f", decision);
    sink.add(std::string(prefix) + "_naive_latency", naive_lat, "sim_s");
    sink.add(std::string(prefix) + "_offline_latency", offline_lat, "sim_s");
  }

  // ---- C: segment rerun vs whole-script rerun -------------------------
  std::printf("\n[C] rerun scope on the 7-job airline chain (r=2)\n");
  for (bool lie : {true, false}) {
    const Outcome c = run_airline(
        baseline::cluster_bft(airline, "c", 1, 2, 2), bad_node(lie));
    const Outcome p = run_airline(
        baseline::full_output_bft(airline, "p", 1, 2), bad_node(lie));
    std::printf("  adversary: %s\n",
                lie ? "digest lying (data intact)" : "data corruption");
    std::printf("    ClusterBFT: %7.1fs, %2zu replicas (verified=%d)\n",
                c.latency, c.runs, c.verified);
    std::printf("    P         : %7.1fs, %2zu replicas (verified=%d)\n",
                p.latency, p.runs, p.verified);
    const std::string pre = lie ? "C_lie" : "C_corrupt";
    sink.add(pre + "_cbft_latency", c.latency, "sim_s");
    sink.add(pre + "_p_latency", p.latency, "sim_s");
  }
  return 0;
}
