// Adaptive checkpointing + dynamic replication ablation (ISSUE 9):
// sim-time latency and replica-run counts under an injected commission
// fault, 2x2 over {checkpointing off/on} x {static r / adaptive
// f+1-first}, plus the fault-free escalation pair. Two bars are
// enforced here (the harness exits non-zero when either regresses, so
// tools/run_all_benches.sh fails the sweep):
//
//   * with the commission fault injected, checkpointing ON must beat
//     OFF by >= 1.3x sim latency at static r — restart waves rerun
//     only the disputed job's unverified-ancestor closure instead of
//     the whole chain;
//   * with no fault, adaptive assurance (f+1 chains first, escalate on
//     evidence) must execute strictly fewer job replicas than the
//     static 2f+1 configuration, with zero escalations.
//
// Every verified cell is additionally checked bit-for-bit against the
// reference interpreter, so a cell that gets faster by promoting
// unverified bytes fails the bench rather than flattering it.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"

namespace clusterbft::bench {
namespace {

// The scenario is deliberately small and fully deterministic: the
// default 16-node / 3-slot testbed and a 3000-flight airline_top20 run,
// with node 5 committing on every task it executes. Node 5 sits on the
// scheduling path of the mid-chain joins, so the fault always fires
// after downstream pipelined work has started — the late-mismatch case
// checkpointed rollback is designed for.
constexpr std::uint64_t kFlights = 3000;
constexpr std::size_t kFaultyNode = 5;

struct Outcome {
  double latency_s = 0;
  std::size_t runs = 0;
  std::size_t waves = 0;
  std::size_t checkpoints = 0;
  std::size_t escalations = 0;
  std::size_t faults = 0;
};

Outcome run_cell(bool faulty, bool checkpoints_on, bool adaptive_r,
                 std::size_t static_r) {
  cluster::TrackerConfig cfg;  // default 16-node / 3-slot testbed
  if (faulty) {
    cfg.policies[kFaultyNode] =
        cluster::AdversaryPolicy{.commission_prob = 1.0};
  }
  // 16 KiB blocks: enough map fan-out that every node in the default
  // testbed lands on the scheduling path, so the adversarial node's
  // faults actually fire mid-chain.
  World w(cfg, 16384);

  workloads::AirlineConfig a;
  a.num_flights = kFlights;
  dataflow::Relation rel = workloads::generate_flights(a);
  std::map<std::string, dataflow::Relation> inputs{{"airline/flights", rel}};
  w.dfs.write("airline/flights", std::move(rel));

  core::ClientRequest req = baseline::cluster_bft(
      workloads::airline_top20_analysis(), "ckpt_bench", 1, static_r, 2);
  req.adaptive_checkpoints = checkpoints_on;
  if (adaptive_r) req.assurance = core::Assurance::kAdaptive;

  const core::ScriptResult res = w.run(req);
  if (!res.verified) {
    std::fprintf(stderr, "bench_checkpoint: cell (faulty=%d ckpt=%d "
                 "adaptive=%d r=%zu) did not verify\n",
                 faulty ? 1 : 0, checkpoints_on ? 1 : 0, adaptive_r ? 1 : 0,
                 static_r);
    std::exit(1);
  }

  // Bit-identity bar: every ablation cell must reproduce the reference
  // interpreter's outputs exactly, fault or no fault.
  const auto plan = dataflow::parse_script(req.script);
  const auto golden = dataflow::interpret(plan, inputs);
  if (res.outputs.size() != golden.size()) {
    std::fprintf(stderr, "bench_checkpoint: output count mismatch\n");
    std::exit(1);
  }
  for (const auto& [path, grel] : golden) {
    const auto it = res.outputs.find(path);
    if (it == res.outputs.end() ||
        it->second.sorted_rows() != grel.sorted_rows()) {
      std::fprintf(stderr, "bench_checkpoint: output %s diverges from the "
                   "reference interpreter\n", path.c_str());
      std::exit(1);
    }
  }

  Outcome o;
  o.latency_s = res.metrics.latency_s;
  o.runs = res.metrics.runs;
  o.waves = res.metrics.waves;
  o.checkpoints = res.metrics.checkpoints;
  o.escalations = res.metrics.escalations;
  o.faults = res.commission_faults_seen;
  return o;
}

void report_cell(BenchJson& sink, const char* tag, const Outcome& o) {
  std::printf("  %-26s lat %6.2f sim_s  runs %3zu  waves %2zu  "
              "ckpts %2zu  esc %zu  faults %zu\n",
              tag, o.latency_s, o.runs, o.waves, o.checkpoints,
              o.escalations, o.faults);
  const std::string t(tag);
  sink.add(t + "_latency", o.latency_s, "sim_s");
  sink.add(t + "_runs", static_cast<double>(o.runs), "count");
  sink.add(t + "_checkpoints", static_cast<double>(o.checkpoints), "count");
  sink.add(t + "_escalations", static_cast<double>(o.escalations), "count");
}

int bench_main() {
  print_header("ClusterBFT adaptive checkpointing + dynamic replication",
               "ISSUE 9: restart-from-checkpoint rollback, f+1-first "
               "escalation");
  BenchJson sink("checkpoint");

  std::printf("\ninjected commission fault (node %zu, p=1.0), f=1:\n",
              kFaultyNode);
  const Outcome f_off_static = run_cell(true, false, false, 2);
  const Outcome f_on_static = run_cell(true, true, false, 2);
  const Outcome f_off_adapt = run_cell(true, false, true, 2);
  const Outcome f_on_adapt = run_cell(true, true, true, 2);
  report_cell(sink, "fault_static_ckpt_off", f_off_static);
  report_cell(sink, "fault_static_ckpt_on", f_on_static);
  report_cell(sink, "fault_adaptive_ckpt_off", f_off_adapt);
  report_cell(sink, "fault_adaptive_ckpt_on", f_on_adapt);

  std::printf("\nfault-free, static 2f+1 vs adaptive f+1-first:\n");
  const Outcome ff_static = run_cell(false, false, false, 3);
  const Outcome ff_adapt = run_cell(false, false, true, 3);
  report_cell(sink, "faultfree_static_2f1", ff_static);
  report_cell(sink, "faultfree_adaptive", ff_adapt);

  const double speedup = f_off_static.latency_s / f_on_static.latency_s;
  const std::size_t saved =
      ff_static.runs - std::min(ff_static.runs, ff_adapt.runs);
  std::printf("\n  checkpoint speedup under fault: %.2fx "
              "(bar: >= 1.30x)\n", speedup);
  std::printf("  adaptive runs saved fault-free: %zu of %zu "
              "(bar: strictly fewer)\n", saved, ff_static.runs);
  sink.add("fault_ckpt_speedup", speedup, "x");
  sink.add("faultfree_runs_saved", static_cast<double>(saved), "count");

  if (f_on_static.checkpoints == 0) {
    std::fprintf(stderr, "bench_checkpoint: BAR FAILED — the faulted "
                 "checkpointing cell materialised nothing\n");
    return 1;
  }
  if (speedup < 1.3) {
    std::fprintf(stderr, "bench_checkpoint: BAR FAILED — checkpointing "
                 "speedup %.2fx under the injected fault is below the "
                 "1.30x bar\n", speedup);
    return 1;
  }
  if (ff_adapt.runs >= ff_static.runs) {
    std::fprintf(stderr, "bench_checkpoint: BAR FAILED — adaptive "
                 "assurance ran %zu replicas fault-free, static 2f+1 ran "
                 "%zu (must be strictly fewer)\n",
                 ff_adapt.runs, ff_static.runs);
    return 1;
  }
  if (ff_adapt.escalations != 0) {
    std::fprintf(stderr, "bench_checkpoint: BAR FAILED — adaptive "
                 "assurance escalated %zu times with no fault injected\n",
                 ff_adapt.escalations);
    return 1;
  }
  std::printf("\nbench_checkpoint: both bars hold\n");
  return 0;
}

}  // namespace
}  // namespace clusterbft::bench

int main() { return clusterbft::bench::bench_main(); }
