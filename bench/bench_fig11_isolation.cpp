// Figure 11: average number of completed jobs until the fault analyzer's
// disjoint family D reaches f, as a function of the probability a faulty
// node produces a commission failure.
//
// Series: job-size ratios r1 = 6:3:1 and r2 = 2:2:1 (large:medium:small),
// for f=1 (4 replicas) and f=2 (7 replicas) — the paper's Fig. 11 setup
// on a simulated 250-node, 3-slot Hadoop cluster.
//
// Paper shapes: steeply decreasing curves; p >= 0.6 needs < 20 jobs;
// very low p can need 100+.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/isolation_sim.hpp"

using namespace clusterbft;
using namespace clusterbft::bench;

int main() {
  print_header("Jobs required to identify disjoint fault sets", "Fig. 11");
  BenchJson sink("fig11");

  struct Series {
    const char* label;
    std::size_t f;
    std::size_t replicas;
    std::size_t ratio[3];  // large : medium : small
  };
  const Series series[] = {
      {"r1,f=1", 1, 4, {6, 3, 1}},
      {"r2,f=1", 1, 4, {2, 2, 1}},
      {"r1,f=2", 2, 7, {6, 3, 1}},
      {"r2,f=2", 2, 7, {2, 2, 1}},
  };

  std::printf("%-6s", "p");
  for (const Series& s : series) std::printf(" %10s", s.label);
  std::printf("\n");

  for (double p = 0.1; p <= 1.001; p += 0.1) {
    std::printf("%-6.1f", p);
    for (const Series& s : series) {
      double total = 0;
      int counted = 0;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        sim::IsolationSimConfig cfg;
        cfg.f = s.f;
        cfg.replicas = s.replicas;
        cfg.commission_prob = p;
        cfg.ratio_large = s.ratio[0];
        cfg.ratio_medium = s.ratio[1];
        cfg.ratio_small = s.ratio[2];
        cfg.seed = seed;
        cfg.max_completed_jobs = 400;
        const auto res = sim::run_isolation_sim(cfg);
        if (res.jobs_until_saturation) {
          total += static_cast<double>(*res.jobs_until_saturation);
          ++counted;
        } else {
          total += static_cast<double>(cfg.max_completed_jobs);  // censored
          ++counted;
        }
      }
      std::printf(" %10.1f", total / counted);
      char metric[64];
      std::snprintf(metric, sizeof(metric), "%s_p%.1f_jobs", s.label, p);
      sink.add(metric, total / counted, "jobs");
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper: decreasing in p; p >= 0.6 isolates within < 20 jobs; f=2\n"
      "needs more jobs than f=1 (two disjoint faulty sets must form).\n");
  return 0;
}
