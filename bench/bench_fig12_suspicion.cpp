// Figure 12: evolution of suspicion levels over time. Counts of nodes in
// the Low (0, 1/3], Med (1/3, 2/3) and High [2/3, 1] suspicion bands per
// time step on the 250-node isolation simulator.
//
// Paper shapes: nothing until the first commission fault (~t=15); the
// suspected-node count stops growing once |D| = f (~t=25); nodes start in
// High/Med but honest bystanders decay (their denominator grows) until
// only the truly faulty nodes stay High (~t=50).
#include <cstdio>

#include "bench_util.hpp"
#include "sim/isolation_sim.hpp"

using namespace clusterbft;
using namespace clusterbft::bench;

int main() {
  print_header("Suspicion level changes over time", "Fig. 12");
  BenchJson sink("fig12");

  sim::IsolationSimConfig cfg;
  cfg.f = 1;
  cfg.replicas = 4;
  // s = faults / jobs executed converges to the commission probability
  // for the faulty node, so it stays in the High band iff p > 2/3.
  cfg.commission_prob = 0.8;
  cfg.seed = 3;
  cfg.max_completed_jobs = 100000;
  cfg.max_time = 150;
  const auto res = sim::run_isolation_sim(cfg);

  std::printf("%-6s %6s %6s %6s\n", "time", "low", "med", "high");
  for (const auto& snap : res.timeline) {
    if (snap.time % 5 != 0) continue;
    std::printf("%-6zu %6zu %6zu %6zu\n", snap.time, snap.low, snap.med,
                snap.high);
  }
  std::printf("\njobs until |D| = f : %s\n",
              res.jobs_until_saturation
                  ? std::to_string(*res.jobs_until_saturation).c_str()
                  : "never");
  std::printf("High band == truly faulty from t = %s\n",
              res.high_band_exact_time
                  ? std::to_string(*res.high_band_exact_time).c_str()
                  : "never");
  std::printf(
      "\npaper: suspected nodes appear after the first fault, stop growing\n"
      "once |D| = f, and by t~50 only the truly faulty nodes remain High.\n");
  sink.add("jobs_until_saturation",
           res.jobs_until_saturation
               ? static_cast<double>(*res.jobs_until_saturation)
               : -1.0,
           "jobs", cfg.seed);
  sink.add("high_band_exact_time",
           res.high_band_exact_time
               ? static_cast<double>(*res.high_band_exact_time)
               : -1.0,
           "sim_steps", cfg.seed);
  return 0;
}
