#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/check.hpp"

#include "crypto/digest.hpp"

namespace clusterbft::crypto {
namespace {

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64 bytes: padding goes into a second block.
  const std::string s(64, 'x');
  EXPECT_EQ(to_hex(Sha256::hash(s)),
            to_hex([&] {
              Sha256 h;
              h.update(s.substr(0, 31));
              h.update(s.substr(31));
              return h.finalize();
            }()));
}

TEST(Sha256Test, StreamingEqualsOneShot) {
  const std::string data =
      "ClusterBFT verifies data-flow computations with digests.";
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    Sha256 h;
    h.update(data.substr(0, cut));
    h.update(data.substr(cut));
    EXPECT_EQ(h.finalize(), Sha256::hash(data)) << "cut at " << cut;
  }
}

TEST(Sha256Test, FinalizeTwiceThrows) {
  Sha256 h;
  h.update("x");
  h.finalize();
  EXPECT_THROW(h.finalize(), CheckError);
}

TEST(Sha256Test, UpdateAfterFinalizeThrows) {
  Sha256 h;
  h.finalize();
  EXPECT_THROW(h.update("x"), CheckError);
}

TEST(DigestTest, HexRoundTrip) {
  const Digest256 d = Digest256::of("hello");
  EXPECT_EQ(d.hex().size(), 64u);
  EXPECT_EQ(d, Digest256::of("hello"));
  EXPECT_NE(d, Digest256::of("hellp"));
}

TEST(DigestTest, OrderingIsTotal) {
  const Digest256 a = Digest256::of("a");
  const Digest256 b = Digest256::of("b");
  EXPECT_TRUE((a < b) || (b < a));
  EXPECT_FALSE(a < a);
}

TEST(ChunkedDigesterTest, SingleDigestByDefault) {
  ChunkedDigester d(0);
  d.add_record("one");
  d.add_record("two");
  const auto out = d.finish();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].chunk_index, 0u);
  EXPECT_EQ(out[0].record_count, 2u);
}

TEST(ChunkedDigesterTest, EmptyStreamStillEmitsOneDigest) {
  // The verifier must distinguish "empty output" from "no digest at all"
  // (an omission).
  ChunkedDigester d(0);
  const auto out = d.finish();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].record_count, 0u);
}

TEST(ChunkedDigesterTest, ChunksEveryDRecords) {
  ChunkedDigester d(2);
  for (int i = 0; i < 5; ++i) d.add_record("r" + std::to_string(i));
  const auto out = d.finish();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].record_count, 2u);
  EXPECT_EQ(out[1].record_count, 2u);
  EXPECT_EQ(out[2].record_count, 1u);
  EXPECT_EQ(out[2].chunk_index, 2u);
}

TEST(ChunkedDigesterTest, FramingIsUnambiguous) {
  // "ab"+"c" must not collide with "a"+"bc".
  ChunkedDigester d1(0);
  d1.add_record("ab");
  d1.add_record("c");
  ChunkedDigester d2(0);
  d2.add_record("a");
  d2.add_record("bc");
  EXPECT_NE(d1.finish()[0].digest, d2.finish()[0].digest);
}

TEST(ChunkedDigesterTest, DeterministicAcrossInstances) {
  auto run = [] {
    ChunkedDigester d(3);
    for (int i = 0; i < 10; ++i) d.add_record("record" + std::to_string(i));
    return d.finish();
  };
  EXPECT_EQ(run(), run());
}

TEST(ChunkedDigesterTest, FinishTwiceThrows) {
  ChunkedDigester d(0);
  d.finish();
  EXPECT_THROW(d.finish(), CheckError);
}

}  // namespace
}  // namespace clusterbft::crypto
