#include "dataflow/plan.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "dataflow/parser.hpp"
#include "workloads/scripts.hpp"

namespace clusterbft::dataflow {
namespace {

LogicalPlan diamond() {
  // load -> filter -> (group-left, group-right) -> ... -> two stores
  return parse_script(
      "a = LOAD 'in' AS (x:long, y:long);\n"
      "f = FILTER a BY x > 0;\n"
      "g1 = GROUP f BY x;\n"
      "c1 = FOREACH g1 GENERATE group, COUNT(f);\n"
      "g2 = GROUP f BY y;\n"
      "c2 = FOREACH g2 GENERATE group, COUNT(f);\n"
      "STORE c1 INTO 'o1';\n"
      "STORE c2 INTO 'o2';\n");
}

TEST(PlanTest, ChildrenAndParents) {
  const auto plan = diamond();
  // Vertex 1 is the filter; it feeds both groups.
  const auto kids = plan.children(1);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(plan.node(kids[0]).kind, OpKind::kGroup);
  EXPECT_EQ(plan.node(kids[1]).kind, OpKind::kGroup);
}

TEST(PlanTest, LoadsAndStores) {
  const auto plan = diamond();
  EXPECT_EQ(plan.loads().size(), 1u);
  EXPECT_EQ(plan.stores().size(), 2u);
}

TEST(PlanTest, LevelsFollowFig5) {
  const auto plan = diamond();
  const auto lv = plan.levels();
  EXPECT_EQ(lv[0], 1u);  // load
  EXPECT_EQ(lv[1], 2u);  // filter
  EXPECT_EQ(lv[2], 3u);  // group1
  EXPECT_EQ(lv[3], 4u);  // foreach1
}

TEST(PlanTest, LevelsTakeMaxOverParents) {
  const auto plan = parse_script(
      "a = LOAD 'l' AS (x:long);\n"
      "b = LOAD 'r' AS (x:long);\n"
      "f = FILTER b BY x > 0;\n"
      "j = JOIN a BY x, f BY x;\n"
      "STORE j INTO 'o';\n");
  const auto lv = plan.levels();
  // join parents are at levels 1 (a) and 2 (f) -> join is max+1 = 3.
  EXPECT_EQ(lv[3], 3u);
}

TEST(PlanTest, DistanceIsUndirectedEdgeCount) {
  const auto plan = diamond();
  EXPECT_EQ(plan.distance(0, 0), 0u);
  EXPECT_EQ(plan.distance(0, 1), 1u);  // load -> filter
  EXPECT_EQ(plan.distance(0, 3), 3u);  // load -> filter -> group -> foreach
  // Two groups are siblings via the filter: distance 2.
  EXPECT_EQ(plan.distance(2, 4), 2u);
}

TEST(PlanTest, ValidateAcceptsPaperPlans) {
  for (const std::string& script :
       {workloads::twitter_follower_analysis(),
        workloads::twitter_two_hop_analysis(),
        workloads::airline_top20_analysis(),
        workloads::weather_average_analysis()}) {
    EXPECT_NO_THROW(parse_script(script).validate());
  }
}

TEST(PlanTest, ValidateRejectsMalformedNodes) {
  LogicalPlan plan;
  OpNode load;
  load.kind = OpKind::kLoad;
  load.path = "in";
  load.schema = Schema::of({{"x", ValueType::kLong}});
  plan.add(load);
  // A store with no inputs is invalid.
  OpNode store;
  store.kind = OpKind::kStore;
  store.path = "out";
  plan.add(store);
  EXPECT_THROW(plan.validate(), CheckError);
}

TEST(PlanTest, ValidateRequiresAStore) {
  LogicalPlan plan;
  OpNode load;
  load.kind = OpKind::kLoad;
  load.path = "in";
  load.schema = Schema::of({{"x", ValueType::kLong}});
  plan.add(load);
  EXPECT_THROW(plan.validate(), CheckError);
}

TEST(PlanTest, AddRejectsForwardReferences) {
  LogicalPlan plan;
  OpNode bad;
  bad.kind = OpKind::kFilter;
  bad.inputs = {5};  // does not exist yet
  EXPECT_THROW(plan.add(bad), CheckError);
}

TEST(PlanTest, ToStringMentionsEveryVertex) {
  const auto plan = diamond();
  const std::string dump = plan.to_string();
  EXPECT_NE(dump.find("Load"), std::string::npos);
  EXPECT_NE(dump.find("Filter"), std::string::npos);
  EXPECT_NE(dump.find("Group"), std::string::npos);
  EXPECT_NE(dump.find("Store"), std::string::npos);
}

TEST(PlanTest, StreamingAndBlockingClassification) {
  EXPECT_TRUE(is_streaming(OpKind::kFilter));
  EXPECT_TRUE(is_streaming(OpKind::kForeach));
  EXPECT_TRUE(is_streaming(OpKind::kUnion));
  EXPECT_FALSE(is_streaming(OpKind::kLimit));
  EXPECT_TRUE(is_blocking(OpKind::kGroup));
  EXPECT_TRUE(is_blocking(OpKind::kJoin));
  EXPECT_TRUE(is_blocking(OpKind::kDistinct));
  EXPECT_TRUE(is_blocking(OpKind::kOrder));
  EXPECT_FALSE(is_blocking(OpKind::kFilter));
}

}  // namespace
}  // namespace clusterbft::dataflow
