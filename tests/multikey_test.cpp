// Multi-key GROUP/JOIN, nested tuple values, and FLATTEN — the Pig
// features added on top of the paper's minimum.
#include <gtest/gtest.h>

#include "dataflow/interpreter.hpp"
#include "dataflow/ops_eval.hpp"
#include "dataflow/parser.hpp"

namespace clusterbft::dataflow {
namespace {

std::int64_t L(std::int64_t x) { return x; }

Relation table(std::vector<std::vector<Value>> rows,
               std::vector<Field> fields) {
  Relation r(Schema(std::move(fields)));
  for (auto& row : rows) r.add(Tuple(std::move(row)));
  return r;
}

TEST(TupleValueTest, PackAndAccess) {
  const Value t = Value::tuple_of({Value(L(1)), Value("x")});
  EXPECT_EQ(t.type(), ValueType::kTuple);
  EXPECT_EQ(t.as_tuple()->at(0).as_long(), 1);
  EXPECT_EQ(t.as_tuple()->at(1).as_string(), "x");
  EXPECT_EQ(t.to_string(), "(1,x)");
}

TEST(TupleValueTest, OrderingAndEquality) {
  const Value a = Value::tuple_of({Value(L(1)), Value(L(2))});
  const Value b = Value::tuple_of({Value(L(1)), Value(L(3))});
  EXPECT_TRUE((a <=> b) < 0);
  EXPECT_EQ(a, Value::tuple_of({Value(L(1)), Value(L(2))}));
  // Tuples sort after bags (cross-type rank).
  const Value bag = Value(std::make_shared<const std::vector<Tuple>>());
  EXPECT_TRUE((bag <=> a) < 0);
}

TEST(TupleValueTest, SerializationDistinguishesNesting) {
  // (1,2) as a tuple must not collide with the fields 1,2 serialised
  // flat, nor with a bag of one (1,2) row.
  std::string flat, nested;
  Value(L(1)).serialize(flat);
  Value(L(2)).serialize(flat);
  Value::tuple_of({Value(L(1)), Value(L(2))}).serialize(nested);
  EXPECT_NE(flat, nested);
}

TEST(MultiKeyTest, GroupByTwoColumns) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long, y:long, v:long);\n"
      "g = GROUP a BY (x, y);\n"
      "c = FOREACH g GENERATE group, COUNT(a) AS n;\n"
      "STORE c INTO 'out';\n");
  const OpNode& g = plan.node(1);
  EXPECT_EQ(g.group_keys, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(g.schema.at(0).type, ValueType::kTuple);

  const Relation in = table(
      {{Value(L(1)), Value(L(1)), Value(L(10))},
       {Value(L(1)), Value(L(2)), Value(L(20))},
       {Value(L(1)), Value(L(1)), Value(L(30))}},
      {{"x", ValueType::kLong}, {"y", ValueType::kLong},
       {"v", ValueType::kLong}});
  const auto out = interpret(plan, {{"in", in}});
  const Relation& c = out.at("out");
  ASSERT_EQ(c.size(), 2u);
  // Group (1,1) has two rows, (1,2) has one.
  EXPECT_EQ(c.rows()[0].at(0), Value::tuple_of({Value(L(1)), Value(L(1))}));
  EXPECT_EQ(c.rows()[0].at(1).as_long(), 2);
  EXPECT_EQ(c.rows()[1].at(1).as_long(), 1);
}

TEST(MultiKeyTest, FlattenGroupExpandsKeys) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long, y:long, v:long);\n"
      "g = GROUP a BY (x, y);\n"
      "c = FOREACH g GENERATE FLATTEN(group), SUM(a.v) AS total;\n"
      "STORE c INTO 'out';\n");
  const OpNode& fe = plan.node(2);
  ASSERT_EQ(fe.schema.size(), 3u);
  EXPECT_EQ(fe.schema.at(0).name, "group::x");
  EXPECT_EQ(fe.schema.at(1).name, "group::y");
  EXPECT_EQ(fe.schema.at(0).type, ValueType::kLong);

  const Relation in = table(
      {{Value(L(7)), Value(L(8)), Value(L(5))},
       {Value(L(7)), Value(L(8)), Value(L(6))}},
      {{"x", ValueType::kLong}, {"y", ValueType::kLong},
       {"v", ValueType::kLong}});
  const auto out = interpret(plan, {{"in", in}});
  const Relation& c = out.at("out");
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.rows()[0].at(0).as_long(), 7);
  EXPECT_EQ(c.rows()[0].at(1).as_long(), 8);
  EXPECT_EQ(c.rows()[0].at(2).as_long(), 11);
}

TEST(MultiKeyTest, FlattenScalarGroupIsIdentity) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long, v:long);\n"
      "g = GROUP a BY x;\n"
      "c = FOREACH g GENERATE FLATTEN(group), COUNT(a) AS n;\n"
      "STORE c INTO 'out';\n");
  const Relation in = table({{Value(L(4)), Value(L(1))}},
                            {{"x", ValueType::kLong}, {"v", ValueType::kLong}});
  const auto out = interpret(plan, {{"in", in}});
  ASSERT_EQ(out.at("out").size(), 1u);
  EXPECT_EQ(out.at("out").rows()[0].at(0).as_long(), 4);
}

TEST(MultiKeyTest, JoinOnTwoColumns) {
  const auto plan = parse_script(
      "a = LOAD 'l' AS (x:long, y:long, lv:chararray);\n"
      "b = LOAD 'r' AS (x:long, y:long, rv:chararray);\n"
      "j = JOIN a BY (x, y), b BY (x, y);\n"
      "p = FOREACH j GENERATE a::x, lv, rv;\n"
      "STORE p INTO 'out';\n");
  const Relation left = table(
      {{Value(L(1)), Value(L(1)), Value("a")},
       {Value(L(1)), Value(L(2)), Value("b")}},
      {{"x", ValueType::kLong}, {"y", ValueType::kLong},
       {"lv", ValueType::kChararray}});
  const Relation right = table(
      {{Value(L(1)), Value(L(1)), Value("X")},
       {Value(L(2)), Value(L(1)), Value("Y")}},
      {{"x", ValueType::kLong}, {"y", ValueType::kLong},
       {"rv", ValueType::kChararray}});
  const auto out = interpret(plan, {{"l", left}, {"r", right}});
  const Relation& p = out.at("out");
  // Only (1,1) matches on BOTH columns.
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.rows()[0].at(1).as_string(), "a");
  EXPECT_EQ(p.rows()[0].at(2).as_string(), "X");
}

TEST(MultiKeyTest, JoinKeyArityMismatchIsAnError) {
  EXPECT_THROW(parse_script("a = LOAD 'l' AS (x:long, y:long);\n"
                            "b = LOAD 'r' AS (x:long);\n"
                            "j = JOIN a BY (x, y), b BY x;\n"
                            "STORE j INTO 'o';\n"),
               ParseError);
}

TEST(MultiKeyTest, MultiKeyGroupRoundTripsThroughSerialisation) {
  // Digest comparability: the tuple-valued group key serialises
  // deterministically.
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long, y:chararray);\n"
      "g = GROUP a BY (x, y);\n"
      "c = FOREACH g GENERATE group, COUNT(a);\n"
      "STORE c INTO 'out';\n");
  const Relation in = table(
      {{Value(L(1)), Value("k")}, {Value(L(1)), Value("k")}},
      {{"x", ValueType::kLong}, {"y", ValueType::kChararray}});
  const auto o1 = interpret(plan, {{"in", in}});
  const auto o2 = interpret(plan, {{"in", in}});
  EXPECT_EQ(serialize_tuple(o1.at("out").rows()[0]),
            serialize_tuple(o2.at("out").rows()[0]));
}

}  // namespace
}  // namespace clusterbft::dataflow
