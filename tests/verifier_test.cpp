#include "core/verifier.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace clusterbft::core {
namespace {

using mapreduce::DigestKey;
using mapreduce::DigestReport;

DigestReport report(const std::string& sid, std::size_t partition,
                    const std::string& content) {
  DigestReport r;
  r.key = DigestKey{sid, /*vertex=*/3, /*reduce_side=*/true, 0, partition, 0};
  r.digest = crypto::Digest256::of(content);
  return r;
}

/// Feed a run that reports `partitions` digests derived from `content`.
void feed_run(Verifier& v, const std::string& sid, std::size_t run,
              const std::string& content, std::size_t partitions = 2,
              bool complete = true) {
  for (std::size_t p = 0; p < partitions; ++p) {
    v.add_report(sid, run, report(sid, p, content + std::to_string(p)));
  }
  if (complete) v.mark_run_complete(sid, run);
}

TEST(VerifierTest, DecidesWithFPlusOneAgreement) {
  Verifier v(1);
  v.expect_run("j", 0, true);
  v.expect_run("j", 1, true);
  feed_run(v, "j", 0, "good");
  EXPECT_FALSE(v.try_decide("j").has_value());  // only one complete run
  feed_run(v, "j", 1, "good");
  const auto d = v.try_decide("j");
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->verified);
  EXPECT_EQ(d->majority_runs, (std::vector<std::size_t>{0, 1}));
  EXPECT_TRUE(d->deviant_runs.empty());
}

TEST(VerifierTest, DeviantRunsIdentified) {
  Verifier v(1);
  for (std::size_t r = 0; r < 3; ++r) v.expect_run("j", r, true);
  feed_run(v, "j", 0, "good");
  feed_run(v, "j", 1, "BAD");
  feed_run(v, "j", 2, "good");
  const auto d = v.try_decide("j");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->majority_runs, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(d->deviant_runs, (std::vector<std::size_t>{1}));
}

TEST(VerifierTest, OneVsOneCannotDecide) {
  Verifier v(1);
  v.expect_run("j", 0, true);
  v.expect_run("j", 1, true);
  feed_run(v, "j", 0, "good");
  feed_run(v, "j", 1, "BAD");
  EXPECT_FALSE(v.try_decide("j").has_value());
  // But the minority is already visible for eager attribution.
  EXPECT_EQ(v.current_deviants("j").size(), 1u);
}

TEST(VerifierTest, FTwoNeedsThreeMatching) {
  Verifier v(2);
  for (std::size_t r = 0; r < 4; ++r) v.expect_run("j", r, true);
  feed_run(v, "j", 0, "good");
  feed_run(v, "j", 1, "good");
  EXPECT_FALSE(v.try_decide("j").has_value());
  feed_run(v, "j", 2, "BAD");
  EXPECT_FALSE(v.try_decide("j").has_value());
  feed_run(v, "j", 3, "good");
  const auto d = v.try_decide("j");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->majority_runs.size(), 3u);
  EXPECT_EQ(d->deviant_runs, (std::vector<std::size_t>{2}));
}

TEST(VerifierTest, MissingDigestKeyBreaksAgreement) {
  // A replica that reports only half its digests (e.g. a task never ran)
  // does not match complete replicas.
  Verifier v(1);
  v.expect_run("j", 0, true);
  v.expect_run("j", 1, true);
  v.expect_run("j", 2, true);
  feed_run(v, "j", 0, "good", 2);
  feed_run(v, "j", 1, "good", 1);  // one partition missing
  feed_run(v, "j", 2, "good", 2);
  const auto d = v.try_decide("j");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->majority_runs, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(d->deviant_runs, (std::vector<std::size_t>{1}));
}

TEST(VerifierTest, NonGatingJobsNeverDecide) {
  Verifier v(1);
  v.expect_run("j", 0, false);
  v.expect_run("j", 1, false);
  v.mark_run_complete("j", 0);
  v.mark_run_complete("j", 1);
  EXPECT_FALSE(v.is_gating("j"));
  EXPECT_FALSE(v.try_decide("j").has_value());
}

TEST(VerifierTest, EmptyDigestVectorsAgreeForGatingJobs) {
  // Gating with zero reports (e.g. an empty stream still emits digests in
  // production, but guard the degenerate case): completion alone agrees.
  Verifier v(1);
  v.expect_run("j", 0, true);
  v.expect_run("j", 1, true);
  v.mark_run_complete("j", 0);
  v.mark_run_complete("j", 1);
  const auto d = v.try_decide("j");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->majority_runs.size(), 2u);
}

TEST(VerifierTest, FZeroDecidesOnFirstCompletion) {
  Verifier v(0);
  v.expect_run("j", 0, true);
  feed_run(v, "j", 0, "whatever");
  const auto d = v.try_decide("j");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->majority_runs, (std::vector<std::size_t>{0}));
}

TEST(VerifierTest, BookkeepingCounters) {
  Verifier v(1);
  v.expect_run("j", 0, true);
  v.expect_run("j", 1, true);
  v.expect_run("j", 2, true);
  feed_run(v, "j", 1, "x");
  EXPECT_EQ(v.expected_runs("j"), 3u);
  EXPECT_EQ(v.completed_runs("j"), 1u);
  EXPECT_EQ(v.incomplete_runs("j"), (std::vector<std::size_t>{0, 2}));
}

TEST(VerifierTest, ReportFromUnknownRunThrows) {
  Verifier v(1);
  v.expect_run("j", 0, true);
  EXPECT_THROW(v.add_report("j", 99, report("j", 0, "x")), CheckError);
  EXPECT_THROW(v.mark_run_complete("j", 99), CheckError);
}

TEST(VerifierTest, ReportAfterCompletionThrows) {
  Verifier v(1);
  v.expect_run("j", 0, true);
  v.mark_run_complete("j", 0);
  EXPECT_THROW(v.add_report("j", 0, report("j", 0, "late")), CheckError);
}

TEST(VerifierTest, DoubleReportLastWriteWins) {
  // A Byzantine task double-reporting a key simply ends up with whatever
  // it sent last — and will not match honest replicas.
  Verifier v(1);
  v.expect_run("j", 0, true);
  v.expect_run("j", 1, true);
  v.expect_run("j", 2, true);
  v.add_report("j", 0, report("j", 0, "good0"));
  v.add_report("j", 0, report("j", 0, "SNEAKY"));
  v.mark_run_complete("j", 0);
  feed_run(v, "j", 1, "good", 1);
  feed_run(v, "j", 2, "good", 1);
  const auto d = v.try_decide("j");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->deviant_runs, (std::vector<std::size_t>{0}));
}

}  // namespace
}  // namespace clusterbft::core
