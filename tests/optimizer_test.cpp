// Plan-optimizer tests: each pass fires where intended, never where it
// would change semantics, and random plans are semantics-preserved
// end-to-end through the reference interpreter.
#include "dataflow/optimizer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"

namespace clusterbft::dataflow {
namespace {

std::int64_t L(std::int64_t x) { return x; }

Relation sample_table(std::uint64_t seed = 3, std::size_t rows = 200) {
  Rng rng(seed);
  Relation r(Schema::of({{"k", ValueType::kLong},
                         {"v", ValueType::kLong},
                         {"s", ValueType::kChararray}}));
  for (std::size_t i = 0; i < rows; ++i) {
    Tuple t;
    t.fields.push_back(Value(rng.uniform_int(0, 9)));
    t.fields.push_back(rng.chance(0.1) ? Value::null()
                                       : Value(rng.uniform_int(-30, 30)));
    t.fields.push_back(Value(std::string(1, static_cast<char>(
                                                'a' + rng.next_below(3)))));
    r.add(std::move(t));
  }
  return r;
}

void expect_equivalent(const std::string& script) {
  const auto plan = parse_script(script);
  const auto opt = optimize(plan);
  const auto in = sample_table();
  const auto golden = interpret(plan, {{"in", in}});
  const auto optimised = interpret(opt, {{"in", in}});
  ASSERT_EQ(golden.size(), optimised.size());
  for (const auto& [path, rel] : golden) {
    EXPECT_EQ(optimised.at(path).sorted_rows(), rel.sorted_rows()) << path;
  }
}

TEST(FoldConstantsTest, FoldsLiteralArithmetic) {
  std::size_t folds = 0;
  const auto e = fold_constants(
      Expr::binary(BinOp::kAdd, Expr::literal_of(Value(L(2))),
                   Expr::binary(BinOp::kMul, Expr::literal_of(Value(L(3))),
                                Expr::literal_of(Value(L(4))))),
      &folds);
  ASSERT_EQ(e->kind, Expr::Kind::kLiteral);
  EXPECT_EQ(e->literal.as_long(), 14);
  EXPECT_EQ(folds, 2u);
}

TEST(FoldConstantsTest, LeavesColumnsAlone) {
  const auto col = Expr::column_ref(0, "x");
  const auto e = fold_constants(
      Expr::binary(BinOp::kAdd, col, Expr::literal_of(Value(L(1)))));
  EXPECT_EQ(e->kind, Expr::Kind::kBinary);
}

TEST(FoldConstantsTest, DivisionByZeroFoldsToNull) {
  const auto e = fold_constants(
      Expr::binary(BinOp::kDiv, Expr::literal_of(Value(L(1))),
                   Expr::literal_of(Value(L(0)))));
  ASSERT_EQ(e->kind, Expr::Kind::kLiteral);
  EXPECT_TRUE(e->literal.is_null());
}

TEST(OptimizerTest, ConstantFoldingInPredicates) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (k:long, v:long, s:chararray);\n"
      "b = FILTER a BY v > 2 + 3;\n"
      "STORE b INTO 'out';\n");
  OptimizerStats stats;
  const auto opt = optimize(plan, &stats);
  EXPECT_GE(stats.constants_folded, 1u);
  EXPECT_EQ(opt.node(1).predicate->to_string(), "(v > 5)");
}

TEST(OptimizerTest, MergesAdjacentFilters) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (k:long, v:long, s:chararray);\n"
      "b = FILTER a BY v > 0;\n"
      "c = FILTER b BY k < 5;\n"
      "STORE c INTO 'out';\n");
  OptimizerStats stats;
  const auto opt = optimize(plan, &stats);
  EXPECT_EQ(stats.filters_merged, 1u);
  std::size_t filters = 0;
  for (const OpNode& n : opt.nodes()) filters += n.kind == OpKind::kFilter;
  EXPECT_EQ(filters, 1u);
  expect_equivalent(
      "a = LOAD 'in' AS (k:long, v:long, s:chararray);\n"
      "b = FILTER a BY v > 0;\n"
      "c = FILTER b BY k < 5;\n"
      "STORE c INTO 'out';\n");
}

TEST(OptimizerTest, DoesNotMergeSharedFilter) {
  // The inner filter feeds two consumers: merging would change one of
  // them.
  const auto plan = parse_script(
      "a = LOAD 'in' AS (k:long, v:long, s:chararray);\n"
      "b = FILTER a BY v > 0;\n"
      "c = FILTER b BY k < 5;\n"
      "STORE b INTO 'o1';\n"
      "STORE c INTO 'o2';\n");
  OptimizerStats stats;
  optimize(plan, &stats);
  EXPECT_EQ(stats.filters_merged, 0u);
}

TEST(OptimizerTest, PushesFilterBelowProjection) {
  const auto script =
      "a = LOAD 'in' AS (k:long, v:long, s:chararray);\n"
      "p = FOREACH a GENERATE v, k;\n"
      "f = FILTER p BY k > 3;\n"
      "STORE f INTO 'out';\n";
  OptimizerStats stats;
  const auto opt = optimize(parse_script(script), &stats);
  EXPECT_EQ(stats.filters_pushed, 1u);
  // After pushdown the filter reads the load directly.
  bool filter_on_load = false;
  for (const OpNode& n : opt.nodes()) {
    if (n.kind == OpKind::kFilter &&
        opt.node(n.inputs[0]).kind == OpKind::kLoad) {
      filter_on_load = true;
    }
  }
  EXPECT_TRUE(filter_on_load);
  expect_equivalent(script);
}

TEST(OptimizerTest, NoPushThroughComputedProjection) {
  // v+1 is not a pure column projection: pushing would duplicate work
  // (and the simple substitution path declines it).
  const auto script =
      "a = LOAD 'in' AS (k:long, v:long, s:chararray);\n"
      "p = FOREACH a GENERATE v + 1 AS w, k;\n"
      "f = FILTER p BY k > 3;\n"
      "STORE f INTO 'out';\n";
  OptimizerStats stats;
  optimize(parse_script(script), &stats);
  EXPECT_EQ(stats.filters_pushed, 0u);
  expect_equivalent(script);
}

TEST(OptimizerTest, ElidesIdentityProjection) {
  const auto script =
      "a = LOAD 'in' AS (k:long, v:long, s:chararray);\n"
      "p = FOREACH a GENERATE k, v, s;\n"
      "g = GROUP p BY k;\n"
      "c = FOREACH g GENERATE group, COUNT(p);\n"
      "STORE c INTO 'out';\n";
  OptimizerStats stats;
  const auto opt = optimize(parse_script(script), &stats);
  EXPECT_EQ(stats.foreachs_elided, 1u);
  EXPECT_LT(opt.size(), parse_script(script).size());
  expect_equivalent(script);
}

TEST(OptimizerTest, ReorderedProjectionIsKept) {
  OptimizerStats stats;
  optimize(parse_script(
               "a = LOAD 'in' AS (k:long, v:long, s:chararray);\n"
               "p = FOREACH a GENERATE v, k, s;\n"
               "STORE p INTO 'out';\n"),
           &stats);
  EXPECT_EQ(stats.foreachs_elided, 0u);
}

TEST(OptimizerTest, SampleFilterNeverPushed) {
  // ROWHASH depends on the whole input tuple: pushing it through a
  // projection would sample different rows.
  const auto script =
      "a = LOAD 'in' AS (k:long, v:long, s:chararray);\n"
      "p = FOREACH a GENERATE v, k;\n"
      "f = SAMPLE p 0.5;\n"
      "STORE f INTO 'out';\n";
  OptimizerStats stats;
  optimize(parse_script(script), &stats);
  EXPECT_EQ(stats.filters_pushed, 0u);
  expect_equivalent(script);
}

class OptimizerSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizerSweep, RandomPlansPreserved) {
  // Random pipelines of filters/projections/groups; the optimized plan
  // must compute exactly the same stores.
  Rng rng(GetParam());
  std::ostringstream os;
  os << "a = LOAD 'in' AS (k:long, v:long, s:chararray);\n";
  std::string cur = "a";
  const int stages = 2 + static_cast<int>(rng.next_below(4));
  bool flat = true;
  for (int i = 0; i < stages && flat; ++i) {
    const std::string next = "x" + std::to_string(i);
    switch (rng.next_below(5)) {
      case 0:
        os << next << " = FILTER " << cur << " BY v > "
           << rng.uniform_int(-5, 5) << " + 1;\n";
        break;
      case 1:
        os << next << " = FOREACH " << cur << " GENERATE k, v, s;\n";
        break;
      case 2:
        os << next << " = FOREACH " << cur << " GENERATE v, k, s;\n";
        break;
      case 3:
        os << next << " = FILTER " << cur << " BY v IS NOT NULL;\n";
        break;
      case 4: {
        os << next << " = GROUP " << cur << " BY $0;\n";
        os << next << "c = FOREACH " << next
           << " GENERATE group, COUNT(" << cur << ");\n";
        os << "STORE " << next << "c INTO 'out';\n";
        flat = false;
        break;
      }
    }
    cur = next;
  }
  if (flat) os << "STORE " << cur << " INTO 'out';\n";
  SCOPED_TRACE(os.str());
  expect_equivalent(os.str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerSweep,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace clusterbft::dataflow
