// COGROUP operator tests: outer semantics, aggregates over either bag,
// distributed-vs-interpreter agreement, and verification under a
// Byzantine node.
#include <gtest/gtest.h>

#include "baseline/presets.hpp"
#include "cluster/tracker.hpp"
#include "core/controller.hpp"
#include "protocol/seam.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"

namespace clusterbft::dataflow {
namespace {

std::int64_t L(std::int64_t x) { return x; }

Relation table(std::vector<std::vector<Value>> rows,
               std::vector<Field> fields) {
  Relation r(Schema(std::move(fields)));
  for (auto& row : rows) r.add(Tuple(std::move(row)));
  return r;
}

Relation orders() {
  return table({{Value(L(1)), Value(L(10))},
                {Value(L(1)), Value(L(20))},
                {Value(L(2)), Value(L(5))}},
               {{"cust", ValueType::kLong}, {"amount", ValueType::kLong}});
}

Relation payments() {
  return table({{Value(L(1)), Value(L(25))},
                {Value(L(3)), Value(L(7))}},
               {{"cust2", ValueType::kLong}, {"paid", ValueType::kLong}});
}

TEST(CogroupTest, OuterSemanticsWithEmptyBags) {
  const auto plan = parse_script(
      "o = LOAD 'orders' AS (cust:long, amount:long);\n"
      "p = LOAD 'payments' AS (cust2:long, paid:long);\n"
      "cg = COGROUP o BY cust, p BY cust2;\n"
      "r = FOREACH cg GENERATE group, COUNT(o) AS orders, COUNT(p) AS pays;\n"
      "STORE r INTO 'out';\n");
  const auto out = interpret(plan, {{"orders", orders()},
                                    {"payments", payments()}});
  const Relation& r = out.at("out");
  // Keys 1, 2, 3 all appear (outer): counts (2,1), (1,0), (0,1).
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.rows()[0].at(0).as_long(), 1);
  EXPECT_EQ(r.rows()[0].at(1).as_long(), 2);
  EXPECT_EQ(r.rows()[0].at(2).as_long(), 1);
  EXPECT_EQ(r.rows()[1].at(1).as_long(), 1);
  EXPECT_EQ(r.rows()[1].at(2).as_long(), 0);
  EXPECT_EQ(r.rows()[2].at(0).as_long(), 3);
  EXPECT_EQ(r.rows()[2].at(1).as_long(), 0);
  EXPECT_EQ(r.rows()[2].at(2).as_long(), 1);
}

TEST(CogroupTest, AggregatesOverBothBags) {
  const auto plan = parse_script(
      "o = LOAD 'orders' AS (cust:long, amount:long);\n"
      "p = LOAD 'payments' AS (cust2:long, paid:long);\n"
      "cg = COGROUP o BY cust, p BY cust2;\n"
      "bal = FOREACH cg GENERATE group AS cust, SUM(o.amount) AS billed, "
      "SUM(p.paid) AS paid;\n"
      "STORE bal INTO 'out';\n");
  const auto out = interpret(plan, {{"orders", orders()},
                                    {"payments", payments()}});
  const Relation& r = out.at("out");
  EXPECT_EQ(r.rows()[0].at(1).as_long(), 30);  // cust 1 billed
  EXPECT_EQ(r.rows()[0].at(2).as_long(), 25);  // cust 1 paid
  EXPECT_TRUE(r.rows()[2].at(1).is_null());    // cust 3 never billed
}

TEST(CogroupTest, UnknownBagAliasRejected) {
  EXPECT_THROW(parse_script(
                   "o = LOAD 'l' AS (k:long);\n"
                   "p = LOAD 'r' AS (k2:long);\n"
                   "cg = COGROUP o BY k, p BY k2;\n"
                   "x = FOREACH cg GENERATE COUNT(zzz);\n"
                   "STORE x INTO 'out';\n"),
               ParseError);
}

TEST(CogroupTest, SelfCogroupRejected) {
  EXPECT_THROW(parse_script("o = LOAD 'l' AS (k:long);\n"
                            "cg = COGROUP o BY k, o BY k;\n"
                            "STORE cg INTO 'out';\n"),
               ParseError);
}

TEST(CogroupTest, DistributedMatchesInterpreterAndVerifies) {
  const std::string script =
      "o = LOAD 'orders' AS (cust:long, amount:long);\n"
      "p = LOAD 'payments' AS (cust2:long, paid:long);\n"
      "cg = COGROUP o BY cust, p BY cust2;\n"
      "r = FOREACH cg GENERATE group AS cust, COUNT(o) AS n, "
      "SUM(p.paid) AS paid;\n"
      "STORE r INTO 'out';\n";
  // Scale up the inputs for a meaningful distributed run.
  Rng rng(5);
  Relation big_orders(orders().schema());
  Relation big_payments(payments().schema());
  for (int i = 0; i < 500; ++i) {
    big_orders.add(Tuple({Value(rng.uniform_int(0, 40)),
                          Value(rng.uniform_int(1, 100))}));
    if (i % 2 == 0) {
      big_payments.add(Tuple({Value(rng.uniform_int(0, 50)),
                              Value(rng.uniform_int(1, 100))}));
    }
  }

  const auto plan = parse_script(script);
  const auto golden = interpret(
      plan, {{"orders", big_orders}, {"payments", big_payments}});

  cluster::EventSim sim;
  mapreduce::Dfs dfs(2048);
  cluster::TrackerConfig cfg;
  cfg.num_nodes = 9;
  cfg.policies[1] = cluster::AdversaryPolicy{.commission_prob = 1.0};
  cluster::ExecutionTracker tracker(sim, dfs, cfg);
  dfs.write("orders", big_orders);
  dfs.write("payments", big_payments);
  protocol::LoopbackSeam seam(tracker);
  core::ClusterBft controller(sim, dfs, seam.transport, seam.programs);
  const auto res = controller.execute(
      baseline::cluster_bft(script, "cg", 1, 2, 1));
  ASSERT_TRUE(res.verified);
  EXPECT_EQ(res.outputs.at("out").sorted_rows(),
            golden.at("out").sorted_rows());
}

TEST(CogroupTest, MultiKeyCogroup) {
  const auto plan = parse_script(
      "a = LOAD 'l' AS (x:long, y:long, v:long);\n"
      "b = LOAD 'r' AS (x2:long, y2:long, w:long);\n"
      "cg = COGROUP a BY (x, y), b BY (x2, y2);\n"
      "r = FOREACH cg GENERATE group, COUNT(a) AS na, COUNT(b) AS nb;\n"
      "STORE r INTO 'out';\n");
  const Relation l = table({{Value(L(1)), Value(L(1)), Value(L(9))}},
                           {{"x", ValueType::kLong}, {"y", ValueType::kLong},
                            {"v", ValueType::kLong}});
  const Relation r = table({{Value(L(1)), Value(L(1)), Value(L(8))},
                            {Value(L(1)), Value(L(2)), Value(L(7))}},
                           {{"x2", ValueType::kLong},
                            {"y2", ValueType::kLong},
                            {"w", ValueType::kLong}});
  const auto out = interpret(plan, {{"l", l}, {"r", r}});
  ASSERT_EQ(out.at("out").size(), 2u);
  EXPECT_EQ(out.at("out").rows()[0].at(1).as_long(), 1);  // (1,1): 1 + 1
  EXPECT_EQ(out.at("out").rows()[0].at(2).as_long(), 1);
  EXPECT_EQ(out.at("out").rows()[1].at(1).as_long(), 0);  // (1,2): 0 + 1
}

}  // namespace
}  // namespace clusterbft::dataflow
