// Execution-tracker tests: scheduling safety (replica pinning), fault
// injection, metrics accounting, and end-to-end job execution on the
// simulated cluster.
#include "cluster/tracker.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include "cluster/event_sim.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"
#include "mapreduce/compiler.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"

namespace clusterbft::cluster {
namespace {

using dataflow::Relation;
using mapreduce::JobDag;
using mapreduce::MRJobSpec;

struct Fixture {
  EventSim sim;
  mapreduce::Dfs dfs{8192};
  dataflow::LogicalPlan plan;
  JobDag dag;

  explicit Fixture(const std::string& script,
                   std::vector<mapreduce::VerificationPoint> vps = {}) {
    workloads::TwitterConfig tw;
    tw.num_edges = 2000;
    tw.num_users = 300;
    dfs.write("twitter/edges", workloads::generate_twitter_edges(tw));
    plan = dataflow::parse_script(script);
    mapreduce::CompileOptions opts;
    opts.sid_prefix = "t";
    dag = mapreduce::compile(plan, vps, opts);
  }

  std::vector<std::string> inputs_for(const MRJobSpec& spec,
                                      const std::string& scope) {
    std::vector<std::string> paths;
    for (const auto& b : spec.branches) {
      const bool load =
          plan.node(b.source_vertex).kind == dataflow::OpKind::kLoad;
      paths.push_back(load ? b.input_path : scope + b.input_path);
    }
    return paths;
  }

  /// Submit all jobs of one replica chain, respecting deps, then run.
  std::vector<std::size_t> run_chain(ExecutionTracker& tracker,
                                     std::size_t replica) {
    const std::string scope = "w" + std::to_string(replica) + "/";
    std::vector<std::size_t> runs;
    std::vector<bool> submitted(dag.jobs.size(), false);
    // Jobs are topologically ordered by construction, and run_chain
    // drives the sim to idle between submissions, so deps are satisfied.
    for (const MRJobSpec& spec : dag.jobs) {
      runs.push_back(tracker.submit(plan, spec, replica,
                                    inputs_for(spec, scope),
                                    scope + spec.output_path));
      tracker.sim().run();
    }
    return runs;
  }
};

TrackerConfig small_cluster(std::size_t nodes = 8, std::size_t slots = 3) {
  TrackerConfig cfg;
  cfg.num_nodes = nodes;
  cfg.slots_per_node = slots;
  return cfg;
}

TEST(TrackerTest, SingleJobCompletesAndMatchesInterpreter) {
  Fixture fx(workloads::twitter_follower_analysis());
  ExecutionTracker tracker(fx.sim, fx.dfs, small_cluster());
  const auto runs = fx.run_chain(tracker, 0);
  for (std::size_t r : runs) EXPECT_TRUE(tracker.run_complete(r));

  const Relation& got = fx.dfs.read("w0/out/follower_counts");
  const auto golden = dataflow::interpret(
      fx.plan, {{"twitter/edges", fx.dfs.read("twitter/edges")}});
  EXPECT_EQ(got.sorted_rows(),
            golden.at("out/follower_counts").sorted_rows());
}

TEST(TrackerTest, MultiJobChainRunsDepsInOrder) {
  Fixture fx(workloads::twitter_two_hop_analysis());
  ExecutionTracker tracker(fx.sim, fx.dfs, small_cluster(12));
  const auto runs = fx.run_chain(tracker, 0);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_TRUE(tracker.run_complete(runs[1]));
  const auto golden = dataflow::interpret(
      fx.plan, {{"twitter/edges", fx.dfs.read("twitter/edges")}});
  EXPECT_EQ(fx.dfs.read("w0/out/two_hop").sorted_rows(),
            golden.at("out/two_hop").sorted_rows());
}

TEST(TrackerTest, ReplicaPinningNeverMixesReplicasOnANode) {
  Fixture fx(workloads::twitter_follower_analysis());
  // 6 nodes x 2 slots: contention forces the scheduler to interleave the
  // replicas, which is exactly when pinning matters. (Each of the 3
  // replicas needs at least 2 pinnable nodes, so fewer than 6 nodes would
  // legitimately starve one replica.)
  ExecutionTracker tracker(fx.sim, fx.dfs, small_cluster(6, 2));

  const MRJobSpec& spec = fx.dag.jobs[0];
  const auto r0 = tracker.submit(fx.plan, spec, 0, fx.inputs_for(spec, "a/"),
                                 "a/" + spec.output_path);
  const auto r1 = tracker.submit(fx.plan, spec, 1, fx.inputs_for(spec, "b/"),
                                 "b/" + spec.output_path);
  const auto r2 = tracker.submit(fx.plan, spec, 2, fx.inputs_for(spec, "c/"),
                                 "c/" + spec.output_path);
  fx.sim.run();
  EXPECT_TRUE(tracker.run_complete(r0));
  EXPECT_TRUE(tracker.run_complete(r1));
  EXPECT_TRUE(tracker.run_complete(r2));

  // No node may appear in two different replicas' node sets.
  for (std::size_t a : {r0, r1, r2}) {
    for (std::size_t b : {r0, r1, r2}) {
      if (a >= b) continue;
      for (NodeId n : tracker.run_nodes(a)) {
        EXPECT_EQ(tracker.run_nodes(b).count(n), 0u)
            << "node " << n << " served replicas of the same sid";
      }
    }
  }
}

TEST(TrackerTest, ReplicasProduceIdenticalOutputs) {
  Fixture fx(workloads::twitter_follower_analysis());
  ExecutionTracker tracker(fx.sim, fx.dfs, small_cluster(16));
  const MRJobSpec& spec = fx.dag.jobs[0];
  tracker.submit(fx.plan, spec, 0, fx.inputs_for(spec, "a/"),
                 "a/" + spec.output_path);
  tracker.submit(fx.plan, spec, 1, fx.inputs_for(spec, "b/"),
                 "b/" + spec.output_path);
  fx.sim.run();
  EXPECT_EQ(fx.dfs.read("a/out/follower_counts").rows(),
            fx.dfs.read("b/out/follower_counts").rows());
}

TEST(TrackerTest, DigestsReportedOncePerTaskAtVerificationPoints) {
  Fixture fx0(workloads::twitter_follower_analysis());
  const auto out_vertex = fx0.dag.jobs[0].output_vertex;
  Fixture fx(workloads::twitter_follower_analysis(), {{out_vertex, 0}});
  ExecutionTracker tracker(fx.sim, fx.dfs, small_cluster());
  std::size_t digest_count = 0;
  tracker.on_digests = [&](std::vector<mapreduce::DigestReport>&& reports,
                           std::size_t, NodeId) {
    for (const mapreduce::DigestReport& r : reports) {
      EXPECT_EQ(r.key.vertex, out_vertex);
      ++digest_count;
    }
  };
  fx.run_chain(tracker, 0);
  // Reduce-side point: one digest per reduce partition.
  EXPECT_EQ(digest_count, fx.dag.jobs[0].num_reducers);
}

TEST(TrackerTest, OmissionNodeHangsTasksForever) {
  Fixture fx(workloads::twitter_follower_analysis());
  TrackerConfig cfg = small_cluster(2, 2);
  cfg.policies[0] = AdversaryPolicy{.omission_prob = 1.0};
  cfg.policies[1] = AdversaryPolicy{.omission_prob = 1.0};
  ExecutionTracker tracker(fx.sim, fx.dfs, cfg);
  const MRJobSpec& spec = fx.dag.jobs[0];
  const auto run = tracker.submit(fx.plan, spec, 0, fx.inputs_for(spec, "a/"),
                                  "a/" + spec.output_path);
  fx.sim.run();
  EXPECT_FALSE(tracker.run_complete(run));
  EXPECT_GT(tracker.stuck_tasks(), 0u);
}

TEST(TrackerTest, CommissionNodeCorruptsOutput) {
  Fixture fx(workloads::twitter_follower_analysis());
  TrackerConfig honest_cfg = small_cluster(1, 3);
  TrackerConfig corrupt_cfg = small_cluster(1, 3);
  corrupt_cfg.policies[0] = AdversaryPolicy{.commission_prob = 1.0};

  EventSim sim1, sim2;
  mapreduce::Dfs dfs1 = fx.dfs;  // copies the input
  mapreduce::Dfs dfs2 = fx.dfs;
  ExecutionTracker honest(sim1, dfs1, honest_cfg);
  ExecutionTracker corrupt(sim2, dfs2, corrupt_cfg);
  const MRJobSpec& spec = fx.dag.jobs[0];
  honest.submit(fx.plan, spec, 0, fx.inputs_for(spec, "a/"),
                "a/" + spec.output_path);
  corrupt.submit(fx.plan, spec, 0, fx.inputs_for(spec, "a/"),
                 "a/" + spec.output_path);
  sim1.run();
  sim2.run();
  EXPECT_NE(dfs1.read("a/out/follower_counts").sorted_rows(),
            dfs2.read("a/out/follower_counts").sorted_rows());
}

TEST(TrackerTest, MetricsAreAccountedAndLatencyPositive) {
  Fixture fx(workloads::twitter_follower_analysis());
  ExecutionTracker tracker(fx.sim, fx.dfs, small_cluster());
  const auto runs = fx.run_chain(tracker, 0);
  const JobRunMetrics& m = tracker.run_metrics(runs[0]);
  EXPECT_GT(m.finish_time, m.submit_time);
  EXPECT_GT(m.cpu_seconds, 0.0);
  EXPECT_GT(m.file_read, 0u);
  EXPECT_GT(m.file_write, 0u);   // shuffle bytes
  EXPECT_GT(m.hdfs_write, 0u);   // job output
  EXPECT_GT(m.tasks_run, fx.dag.jobs[0].num_reducers);  // maps + reduces
}

TEST(TrackerTest, ExcludedNodesGetNoTasks) {
  Fixture fx(workloads::twitter_follower_analysis());
  ExecutionTracker tracker(fx.sim, fx.dfs, small_cluster(3, 3));
  tracker.resources().record_execution(0);
  tracker.resources().record_fault(0);
  tracker.resources().apply_threshold(0.5);
  const MRJobSpec& spec = fx.dag.jobs[0];
  const auto run = tracker.submit(fx.plan, spec, 0, fx.inputs_for(spec, "a/"),
                                  "a/" + spec.output_path);
  fx.sim.run();
  EXPECT_TRUE(tracker.run_complete(run));
  EXPECT_EQ(tracker.run_nodes(run).count(0), 0u);
}

TEST(TrackerTest, FasterNodesFinishEarlier) {
  Fixture fx(workloads::twitter_follower_analysis());
  TrackerConfig slow_cfg = small_cluster(4, 3);
  TrackerConfig fast_cfg = small_cluster(4, 3);
  for (NodeId n = 0; n < 4; ++n) fast_cfg.speeds[n] = 4.0;

  EventSim sim1, sim2;
  mapreduce::Dfs dfs1 = fx.dfs;
  mapreduce::Dfs dfs2 = fx.dfs;
  ExecutionTracker slow(sim1, dfs1, slow_cfg);
  ExecutionTracker fast(sim2, dfs2, fast_cfg);
  const MRJobSpec& spec = fx.dag.jobs[0];
  const auto r1 = slow.submit(fx.plan, spec, 0, fx.inputs_for(spec, "a/"),
                              "a/" + spec.output_path);
  const auto r2 = fast.submit(fx.plan, spec, 0, fx.inputs_for(spec, "a/"),
                              "a/" + spec.output_path);
  sim1.run();
  sim2.run();
  EXPECT_LT(fast.run_metrics(r2).finish_time,
            slow.run_metrics(r1).finish_time);
}

TEST(EventSimTest, OrdersEventsByTimeThenInsertion) {
  EventSim sim;
  std::vector<int> order;
  sim.schedule_at(2.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });  // same time: FIFO
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(EventSimTest, SchedulingInThePastThrows) {
  EventSim sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), CheckError);
}

TEST(EventSimTest, NestedSchedulingWorks) {
  EventSim sim;
  int fired = 0;
  sim.schedule_after(1.0, [&] {
    ++fired;
    sim.schedule_after(1.0, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

}  // namespace
}  // namespace clusterbft::cluster
