#include "core/graph_analyzer.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dataflow/parser.hpp"
#include "workloads/scripts.hpp"

namespace clusterbft::core {
namespace {

using dataflow::LogicalPlan;
using dataflow::OpId;
using dataflow::OpKind;
using dataflow::parse_script;

/// The Fig. 4 shape: three loads of different sizes feeding filters, two
/// joins funnelling into one store.
LogicalPlan fig4_like() {
  return parse_script(
      "l1 = LOAD 'in1' AS (k:long, a:long);\n"
      "l2 = LOAD 'in2' AS (k:long, b:long);\n"
      "l3 = LOAD 'in3' AS (k:long, c:long);\n"
      "f1 = FILTER l1 BY a > 0;\n"
      "f2 = FILTER l2 BY b > 0;\n"
      "f3 = FILTER l3 BY c > 0;\n"
      "j1 = JOIN f2 BY k, f3 BY k;\n"
      "j2 = JOIN f1 BY k, j1 BY f2::k;\n"
      "STORE j2 INTO 'out';\n");
}

std::map<std::string, std::uint64_t> fig4_sizes() {
  // 10G : 20G : 30G, like the paper's annotations (scaled down).
  return {{"in1", 10ull << 20}, {"in2", 20ull << 20}, {"in3", 30ull << 20}};
}

TEST(InputRatioTest, LoadsSplitTotalInput) {
  const auto plan = fig4_like();
  const auto ir = compute_input_ratios(plan, fig4_sizes());
  EXPECT_NEAR(ir[0], 10.0 / 60.0, 1e-9);
  EXPECT_NEAR(ir[1], 20.0 / 60.0, 1e-9);
  EXPECT_NEAR(ir[2], 30.0 / 60.0, 1e-9);
}

TEST(InputRatioTest, FiltersInheritParentRatio) {
  const auto plan = fig4_like();
  const auto ir = compute_input_ratios(plan, fig4_sizes());
  // Level-1 ratios sum to 1, so each filter's normalised ratio equals its
  // parent's.
  EXPECT_NEAR(ir[3], ir[0], 1e-9);
  EXPECT_NEAR(ir[4], ir[1], 1e-9);
  EXPECT_NEAR(ir[5], ir[2], 1e-9);
}

TEST(InputRatioTest, JoinAccumulatesParents) {
  const auto plan = fig4_like();
  const auto ir = compute_input_ratios(plan, fig4_sizes());
  // j1 merges f2 (.33) and f3 (.5); denominator is the whole level (1.0).
  EXPECT_NEAR(ir[6], (20.0 + 30.0) / 60.0, 1e-9);
  EXPECT_GT(ir[7], ir[6]);  // j2 funnels everything
}

TEST(InputRatioTest, MissingSizesFallBackToDeclared) {
  auto plan = fig4_like();
  for (OpId v : plan.loads()) plan.node(v).declared_input_bytes = 100;
  const auto ir = compute_input_ratios(plan, {});
  EXPECT_NEAR(ir[0], 1.0 / 3.0, 1e-9);
}

TEST(MarkerTest, PicksRequestedNumberOfDistinctPoints) {
  const auto plan = fig4_like();
  const auto ir = compute_input_ratios(plan, fig4_sizes());
  for (std::size_t n : {1u, 2u, 3u}) {
    const auto marked =
        mark_verification_points(plan, ir, n, AdversaryModel::kWeak);
    EXPECT_EQ(marked.size(), n);
    std::set<OpId> unique(marked.begin(), marked.end());
    EXPECT_EQ(unique.size(), n);
  }
}

TEST(MarkerTest, NeverMarksLoadsOrStores) {
  const auto plan = fig4_like();
  const auto ir = compute_input_ratios(plan, fig4_sizes());
  const auto marked =
      mark_verification_points(plan, ir, 100, AdversaryModel::kWeak);
  for (OpId v : marked) {
    EXPECT_NE(plan.node(v).kind, OpKind::kLoad);
    EXPECT_NE(plan.node(v).kind, OpKind::kStore);
  }
}

TEST(MarkerTest, FirstPickIsAMidpointNotTheSink) {
  // The sink-feeding join duplicates the always-verified final output, so
  // the first marked point must sit strictly above it — the "mid point"
  // behaviour the paper's Fig. 4 walkthrough describes.
  const auto plan = fig4_like();
  const auto ir = compute_input_ratios(plan, fig4_sizes());
  const auto marked =
      mark_verification_points(plan, ir, 1, AdversaryModel::kWeak);
  ASSERT_EQ(marked.size(), 1u);
  // Not the sink-adjacent join (j2, too expensive to recompute, and its
  // digest duplicates the final output) and not a top-of-graph filter on
  // the smallest input (f1, too little data flows through it).
  EXPECT_NE(plan.node(marked[0]).alias, "j2");
  EXPECT_NE(plan.node(marked[0]).alias, "f1");
  const auto stores = plan.stores();
  EXPECT_GE(plan.distance(marked[0], stores[0]), 2u);
}

TEST(MarkerTest, StrongAdversaryRestrictsToJobBoundaries) {
  const auto plan = fig4_like();
  const auto ir = compute_input_ratios(plan, fig4_sizes());
  const auto marked =
      mark_verification_points(plan, ir, 100, AdversaryModel::kStrong);
  for (OpId v : marked) {
    EXPECT_TRUE(dataflow::is_blocking(plan.node(v).kind))
        << plan.node(v).to_string();
  }
  // Weak adversary has strictly more candidates (the filters).
  const auto weak =
      mark_verification_points(plan, ir, 100, AdversaryModel::kWeak);
  EXPECT_GT(weak.size(), marked.size());
}

TEST(MarkerTest, SecondPointSpreadsAwayFromFirst) {
  const auto plan = fig4_like();
  const auto ir = compute_input_ratios(plan, fig4_sizes());
  const auto marked =
      mark_verification_points(plan, ir, 2, AdversaryModel::kWeak);
  ASSERT_EQ(marked.size(), 2u);
  // The two points never sit adjacent to each other.
  EXPECT_GE(plan.distance(marked[0], marked[1]), 1u);
}

TEST(AnalyzeTest, AddsFinalOutputPoints) {
  const auto plan = parse_script(workloads::airline_top20_analysis());
  std::map<std::string, std::uint64_t> sizes{{"airline/flights", 1 << 20}};
  ClientRequest req;
  req.n = 2;
  req.records_per_digest = 123;
  const auto vps = analyze(plan, sizes, req);
  // 2 internal + 3 stores.
  EXPECT_EQ(vps.size(), 5u);
  for (const auto& vp : vps) EXPECT_EQ(vp.records_per_digest, 123u);
}

TEST(AnalyzeTest, PurePigHasNoPoints) {
  const auto plan = parse_script(workloads::twitter_follower_analysis());
  ClientRequest req;
  req.n = 0;
  req.verify_final_output = false;
  EXPECT_TRUE(analyze(plan, {{"twitter/edges", 1 << 20}}, req).empty());
}

TEST(AnalyzeTest, NCappedByCandidateCount) {
  const auto plan = parse_script(workloads::twitter_follower_analysis());
  ClientRequest req;
  req.n = 1000;  // "individual" mode asks for everything
  req.verify_final_output = false;
  const auto vps = analyze(plan, {{"twitter/edges", 1 << 20}}, req);
  EXPECT_GT(vps.size(), 0u);
  EXPECT_LT(vps.size(), plan.size());
}

}  // namespace
}  // namespace clusterbft::core
