#include "core/graph_analyzer.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dataflow/parser.hpp"
#include "mapreduce/compiler.hpp"
#include "workloads/scripts.hpp"

namespace clusterbft::core {
namespace {

using dataflow::LogicalPlan;
using dataflow::OpId;
using dataflow::OpKind;
using dataflow::parse_script;

/// The Fig. 4 shape: three loads of different sizes feeding filters, two
/// joins funnelling into one store.
LogicalPlan fig4_like() {
  return parse_script(
      "l1 = LOAD 'in1' AS (k:long, a:long);\n"
      "l2 = LOAD 'in2' AS (k:long, b:long);\n"
      "l3 = LOAD 'in3' AS (k:long, c:long);\n"
      "f1 = FILTER l1 BY a > 0;\n"
      "f2 = FILTER l2 BY b > 0;\n"
      "f3 = FILTER l3 BY c > 0;\n"
      "j1 = JOIN f2 BY k, f3 BY k;\n"
      "j2 = JOIN f1 BY k, j1 BY f2::k;\n"
      "STORE j2 INTO 'out';\n");
}

std::map<std::string, std::uint64_t> fig4_sizes() {
  // 10G : 20G : 30G, like the paper's annotations (scaled down).
  return {{"in1", 10ull << 20}, {"in2", 20ull << 20}, {"in3", 30ull << 20}};
}

TEST(InputRatioTest, LoadsSplitTotalInput) {
  const auto plan = fig4_like();
  const auto ir = compute_input_ratios(plan, fig4_sizes());
  EXPECT_NEAR(ir[0], 10.0 / 60.0, 1e-9);
  EXPECT_NEAR(ir[1], 20.0 / 60.0, 1e-9);
  EXPECT_NEAR(ir[2], 30.0 / 60.0, 1e-9);
}

TEST(InputRatioTest, FiltersInheritParentRatio) {
  const auto plan = fig4_like();
  const auto ir = compute_input_ratios(plan, fig4_sizes());
  // Level-1 ratios sum to 1, so each filter's normalised ratio equals its
  // parent's.
  EXPECT_NEAR(ir[3], ir[0], 1e-9);
  EXPECT_NEAR(ir[4], ir[1], 1e-9);
  EXPECT_NEAR(ir[5], ir[2], 1e-9);
}

TEST(InputRatioTest, JoinAccumulatesParents) {
  const auto plan = fig4_like();
  const auto ir = compute_input_ratios(plan, fig4_sizes());
  // j1 merges f2 (.33) and f3 (.5); denominator is the whole level (1.0).
  EXPECT_NEAR(ir[6], (20.0 + 30.0) / 60.0, 1e-9);
  EXPECT_GT(ir[7], ir[6]);  // j2 funnels everything
}

TEST(InputRatioTest, MissingSizesFallBackToDeclared) {
  auto plan = fig4_like();
  for (OpId v : plan.loads()) plan.node(v).declared_input_bytes = 100;
  const auto ir = compute_input_ratios(plan, {});
  EXPECT_NEAR(ir[0], 1.0 / 3.0, 1e-9);
}

TEST(MarkerTest, PicksRequestedNumberOfDistinctPoints) {
  const auto plan = fig4_like();
  const auto ir = compute_input_ratios(plan, fig4_sizes());
  for (std::size_t n : {1u, 2u, 3u}) {
    const auto marked =
        mark_verification_points(plan, ir, n, AdversaryModel::kWeak);
    EXPECT_EQ(marked.size(), n);
    std::set<OpId> unique(marked.begin(), marked.end());
    EXPECT_EQ(unique.size(), n);
  }
}

TEST(MarkerTest, NeverMarksLoadsOrStores) {
  const auto plan = fig4_like();
  const auto ir = compute_input_ratios(plan, fig4_sizes());
  const auto marked =
      mark_verification_points(plan, ir, 100, AdversaryModel::kWeak);
  for (OpId v : marked) {
    EXPECT_NE(plan.node(v).kind, OpKind::kLoad);
    EXPECT_NE(plan.node(v).kind, OpKind::kStore);
  }
}

TEST(MarkerTest, FirstPickIsAMidpointNotTheSink) {
  // The sink-feeding join duplicates the always-verified final output, so
  // the first marked point must sit strictly above it — the "mid point"
  // behaviour the paper's Fig. 4 walkthrough describes.
  const auto plan = fig4_like();
  const auto ir = compute_input_ratios(plan, fig4_sizes());
  const auto marked =
      mark_verification_points(plan, ir, 1, AdversaryModel::kWeak);
  ASSERT_EQ(marked.size(), 1u);
  // Not the sink-adjacent join (j2, too expensive to recompute, and its
  // digest duplicates the final output) and not a top-of-graph filter on
  // the smallest input (f1, too little data flows through it).
  EXPECT_NE(plan.node(marked[0]).alias, "j2");
  EXPECT_NE(plan.node(marked[0]).alias, "f1");
  const auto stores = plan.stores();
  EXPECT_GE(plan.distance(marked[0], stores[0]), 2u);
}

TEST(MarkerTest, StrongAdversaryRestrictsToJobBoundaries) {
  const auto plan = fig4_like();
  const auto ir = compute_input_ratios(plan, fig4_sizes());
  const auto marked =
      mark_verification_points(plan, ir, 100, AdversaryModel::kStrong);
  for (OpId v : marked) {
    EXPECT_TRUE(dataflow::is_blocking(plan.node(v).kind))
        << plan.node(v).to_string();
  }
  // Weak adversary has strictly more candidates (the filters).
  const auto weak =
      mark_verification_points(plan, ir, 100, AdversaryModel::kWeak);
  EXPECT_GT(weak.size(), marked.size());
}

TEST(MarkerTest, SecondPointSpreadsAwayFromFirst) {
  const auto plan = fig4_like();
  const auto ir = compute_input_ratios(plan, fig4_sizes());
  const auto marked =
      mark_verification_points(plan, ir, 2, AdversaryModel::kWeak);
  ASSERT_EQ(marked.size(), 2u);
  // The two points never sit adjacent to each other.
  EXPECT_GE(plan.distance(marked[0], marked[1]), 1u);
}

TEST(AnalyzeTest, AddsFinalOutputPoints) {
  const auto plan = parse_script(workloads::airline_top20_analysis());
  std::map<std::string, std::uint64_t> sizes{{"airline/flights", 1 << 20}};
  ClientRequest req;
  req.n = 2;
  req.records_per_digest = 123;
  const auto vps = analyze(plan, sizes, req);
  // 2 internal + 3 stores.
  EXPECT_EQ(vps.size(), 5u);
  for (const auto& vp : vps) EXPECT_EQ(vp.records_per_digest, 123u);
}

TEST(AnalyzeTest, PurePigHasNoPoints) {
  const auto plan = parse_script(workloads::twitter_follower_analysis());
  ClientRequest req;
  req.n = 0;
  req.verify_final_output = false;
  EXPECT_TRUE(analyze(plan, {{"twitter/edges", 1 << 20}}, req).empty());
}

TEST(AnalyzeTest, NCappedByCandidateCount) {
  const auto plan = parse_script(workloads::twitter_follower_analysis());
  ClientRequest req;
  req.n = 1000;  // "individual" mode asks for everything
  req.verify_final_output = false;
  const auto vps = analyze(plan, {{"twitter/edges", 1 << 20}}, req);
  EXPECT_GT(vps.size(), 0u);
  EXPECT_LT(vps.size(), plan.size());
}

// ---- checkpoint cost model -----------------------------------------------

struct CompiledDag {
  mapreduce::JobDag dag;
  std::vector<bool> gating;
};

CompiledDag compile_fig4(const std::map<std::string, std::uint64_t>& sizes) {
  const auto plan = fig4_like();
  ClientRequest req;
  req.n = 2;
  const auto vps = analyze(plan, sizes, req);
  mapreduce::CompileOptions copts;
  copts.sid_prefix = "ckpt";
  CompiledDag out{mapreduce::compile(plan, vps, copts), {}};
  out.gating.assign(out.dag.jobs.size(), false);
  for (std::size_t j = 0; j < out.dag.jobs.size(); ++j) {
    out.gating[j] = !out.dag.jobs[j].vps.empty() &&
                    !out.dag.jobs[j].is_final_store;
  }
  return out;
}

TEST(CheckpointModelTest, EstimatesPassInputBytesThrough) {
  const auto sizes = fig4_sizes();
  const auto c = compile_fig4(sizes);
  const auto est = estimate_job_output_bytes(c.dag, sizes);
  ASSERT_EQ(est.size(), c.dag.jobs.size());
  std::uint64_t total_in = 0;
  for (const auto& [path, bytes] : sizes) total_in += bytes;
  // Pass-through upper bound: every estimate is positive and no job can
  // exceed the total input volume (the fig4 DAG is a funnel).
  for (std::size_t j = 0; j < est.size(); ++j) {
    EXPECT_GT(est[j], 0u) << "job " << j;
    EXPECT_LE(est[j], total_in) << "job " << j;
  }
  // The final store consumes everything: its estimate is the total.
  for (const mapreduce::MRJobSpec& spec : c.dag.jobs) {
    if (spec.is_final_store) EXPECT_EQ(est[spec.job_index], total_in);
  }
}

TEST(CheckpointModelTest, SelectsOnlyGatingJobsAndIsDeterministic) {
  const auto sizes = fig4_sizes();
  const auto c = compile_fig4(sizes);
  const auto depth = pipeline_depths(c.dag);
  const auto a = select_checkpoints(c.dag, sizes, depth, c.gating, 0.0, 0);
  const auto b = select_checkpoints(c.dag, sizes, depth, c.gating, 0.0, 0);
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.est_bytes, b.est_bytes);
  bool any = false;
  for (std::size_t j = 0; j < a.selected.size(); ++j) {
    if (!a.selected[j]) continue;
    any = true;
    EXPECT_TRUE(c.gating[j]) << "non-gating job " << j << " selected";
  }
  // Even at zero suspicion the 0.25 risk floor beats the 0.1 write cost
  // for mid-chain points, so something is checkpointed.
  EXPECT_TRUE(any);
}

TEST(CheckpointModelTest, BudgetBoundsSelectedBytes) {
  const auto sizes = fig4_sizes();
  const auto c = compile_fig4(sizes);
  const auto depth = pipeline_depths(c.dag);
  const auto all = select_checkpoints(c.dag, sizes, depth, c.gating, 1.0, 0);
  std::uint64_t unbounded = 0;
  std::size_t count = 0;
  for (std::size_t j = 0; j < all.selected.size(); ++j) {
    if (!all.selected[j]) continue;
    unbounded += all.est_bytes[j];
    ++count;
  }
  ASSERT_GT(count, 0u);
  // A budget below the unbounded spend must select strictly less, and
  // never exceed the budget.
  const std::uint64_t budget = unbounded / 2;
  const auto capped =
      select_checkpoints(c.dag, sizes, depth, c.gating, 1.0, budget);
  std::uint64_t spent = 0;
  for (std::size_t j = 0; j < capped.selected.size(); ++j) {
    if (capped.selected[j]) spent += capped.est_bytes[j];
  }
  EXPECT_LE(spent, budget);
  EXPECT_LT(spent, unbounded);
}

TEST(CheckpointModelTest, HigherSuspicionNeverSelectsLess) {
  const auto sizes = fig4_sizes();
  const auto c = compile_fig4(sizes);
  const auto depth = pipeline_depths(c.dag);
  const auto calm = select_checkpoints(c.dag, sizes, depth, c.gating, 0.0, 0);
  const auto hot = select_checkpoints(c.dag, sizes, depth, c.gating, 1.0, 0);
  for (std::size_t j = 0; j < calm.selected.size(); ++j) {
    if (calm.selected[j]) {
      EXPECT_TRUE(hot.selected[j])
          << "job " << j << " dropped when risk rose";
    }
  }
}

}  // namespace
}  // namespace clusterbft::core
