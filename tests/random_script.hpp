// Shared random plan generation for property tests: a random flat table
// and a random PigLatin-subset script over it. Used by random_plan_test
// (distributed execution matches the interpreter) and determinism_test
// (verification-point digests are bit-stable across runs).
#pragma once

#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "dataflow/relation.hpp"

namespace clusterbft::testgen {

/// A random flat table: (k:long, v:long, s:chararray) with some nulls.
inline dataflow::Relation random_table(Rng& rng, std::size_t rows) {
  using dataflow::Schema;
  using dataflow::Tuple;
  using dataflow::Value;
  using dataflow::ValueType;
  dataflow::Relation rel(Schema::of({{"k", ValueType::kLong},
                                     {"v", ValueType::kLong},
                                     {"s", ValueType::kChararray}}));
  for (std::size_t i = 0; i < rows; ++i) {
    Tuple t;
    t.fields.push_back(Value(rng.uniform_int(0, 8)));
    if (rng.chance(0.1)) {
      t.fields.push_back(Value::null());
    } else {
      t.fields.push_back(Value(rng.uniform_int(-50, 50)));
    }
    t.fields.push_back(Value(std::string(1, static_cast<char>(
                                                'a' + rng.next_below(4)))));
    rel.add(std::move(t));
  }
  return rel;
}

/// Build a random script over input 'ta' (and sometimes a self-join).
inline std::string random_script(Rng& rng) {
  std::ostringstream os;
  os << "a = LOAD 'ta' AS (k:long, v:long, s:chararray);\n";
  std::string cur = "a";
  int step = 0;
  auto fresh = [&step] { return "x" + std::to_string(step++); };

  // 1-3 streaming/blocking stages.
  const int stages = 1 + static_cast<int>(rng.next_below(3));
  bool grouped = false;
  for (int i = 0; i < stages && !grouped; ++i) {
    const auto pick = rng.next_below(6);
    const std::string next = fresh();
    switch (pick) {
      case 0:
        os << next << " = FILTER " << cur << " BY v IS NOT NULL;\n";
        break;
      case 1:
        os << next << " = FILTER " << cur << " BY ABS(v) > "
           << rng.next_below(30) << ";\n";
        break;
      case 2:
        os << next << " = FOREACH " << cur
           << " GENERATE k, v + 1 AS v, UPPER(s) AS s;\n";
        break;
      case 3:
        os << next << " = DISTINCT " << cur << ";\n";
        break;
      case 4: {
        // Self-join on k, then project back to the 3-column shape.
        os << "b" << step << " = LOAD 'ta' AS (k2:long, v2:long, s2:chararray);\n";
        os << next << "j = JOIN " << cur << " BY k, b" << step
           << " BY k2;\n";
        os << next << " = FOREACH " << next
           << "j GENERATE k, v2 AS v, s AS s;\n";
        ++step;
        break;
      }
      case 5: {
        // Group + aggregate ends the pipeline (output shape changes).
        os << next << " = GROUP " << cur << " BY k;\n";
        const std::string agg = fresh();
        os << agg << " = FOREACH " << next
           << " GENERATE group AS k, COUNT(" << cur << ") AS n, SUM(" << cur
           << ".v) AS total;\n";
        cur = agg;
        grouped = true;
        continue;
      }
    }
    if (pick != 5) cur = next;
  }
  os << "STORE " << cur << " INTO 'out';\n";
  return os.str();
}

}  // namespace clusterbft::testgen
