// SPLIT and SAMPLE operator tests, including the determinism property
// SAMPLE must satisfy for replica digest comparison.
#include <gtest/gtest.h>

#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"

namespace clusterbft::dataflow {
namespace {

Relation numbers(std::int64_t n) {
  Relation r(Schema::of({{"x", ValueType::kLong}}));
  for (std::int64_t i = 0; i < n; ++i) r.add(Tuple({Value(i)}));
  return r;
}

TEST(SplitTest, RowsRouteToMatchingBranches) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long);\n"
      "SPLIT a INTO small IF x < 5, big IF x >= 5, all IF x >= 0;\n"
      "STORE small INTO 'o_small';\n"
      "STORE big INTO 'o_big';\n"
      "STORE all INTO 'o_all';\n");
  const auto out = interpret(plan, {{"in", numbers(10)}});
  EXPECT_EQ(out.at("o_small").size(), 5u);
  EXPECT_EQ(out.at("o_big").size(), 5u);
  // Branches overlap freely (Pig semantics).
  EXPECT_EQ(out.at("o_all").size(), 10u);
}

TEST(SplitTest, NeedsTwoBranches) {
  EXPECT_THROW(parse_script("a = LOAD 'i' AS (x:long);\n"
                            "SPLIT a INTO only IF x > 0;\n"
                            "STORE only INTO 'o';\n"),
               ParseError);
}

TEST(SplitTest, BranchesAreIndependentFilters) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long);\n"
      "SPLIT a INTO evens IF x % 2 == 0, odds IF x % 2 == 1;\n"
      "g = GROUP evens BY x;\n"
      "c = FOREACH g GENERATE group, COUNT(evens);\n"
      "STORE c INTO 'o1';\n"
      "STORE odds INTO 'o2';\n");
  const auto out = interpret(plan, {{"in", numbers(8)}});
  EXPECT_EQ(out.at("o1").size(), 4u);
  EXPECT_EQ(out.at("o2").size(), 4u);
}

TEST(SampleTest, FractionZeroAndOne) {
  const auto plan0 = parse_script(
      "a = LOAD 'in' AS (x:long);\n"
      "s = SAMPLE a 0;\n"
      "STORE s INTO 'o';\n");
  EXPECT_EQ(interpret(plan0, {{"in", numbers(100)}}).at("o").size(), 0u);

  const auto plan1 = parse_script(
      "a = LOAD 'in' AS (x:long);\n"
      "s = SAMPLE a 1;\n"
      "STORE s INTO 'o';\n");
  EXPECT_EQ(interpret(plan1, {{"in", numbers(100)}}).at("o").size(), 100u);
}

TEST(SampleTest, FractionApproximatelyRespected) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long);\n"
      "s = SAMPLE a 0.3;\n"
      "STORE s INTO 'o';\n");
  const auto out = interpret(plan, {{"in", numbers(5000)}});
  const double rate = static_cast<double>(out.at("o").size()) / 5000.0;
  EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(SampleTest, DeterministicAcrossEvaluations) {
  // The property digest comparison needs: two evaluations (two replicas)
  // keep exactly the same rows.
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long);\n"
      "s = SAMPLE a 0.5;\n"
      "STORE s INTO 'o';\n");
  const Relation in = numbers(1000);
  const auto o1 = interpret(plan, {{"in", in}});
  const auto o2 = interpret(plan, {{"in", in}});
  EXPECT_EQ(o1.at("o").rows(), o2.at("o").rows());
}

TEST(SampleTest, FractionOutOfRangeRejected) {
  EXPECT_THROW(parse_script("a = LOAD 'i' AS (x:long);\n"
                            "s = SAMPLE a 1.5;\nSTORE s INTO 'o';\n"),
               ParseError);
}

}  // namespace
}  // namespace clusterbft::dataflow
