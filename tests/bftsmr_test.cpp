// PBFT library tests: normal-case agreement, safety (identical logs on
// correct replicas), liveness under f crashed backups, view change on a
// crashed primary, malicious replies masked at the client, checkpoint
// garbage collection — parameterized over f.
#include "bftsmr/system.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace clusterbft::bftsmr {
namespace {

using cluster::EventSim;

SystemConfig config(std::size_t f, std::uint64_t seed = 1) {
  SystemConfig cfg;
  cfg.f = f;
  cfg.seed = seed;
  return cfg;
}

/// Submit `n` ops sequentially-numbered and run the sim to quiescence.
std::vector<std::string> run_ops(EventSim& sim, BftSystem& sys,
                                 std::size_t n,
                                 std::vector<double>* latencies = nullptr) {
  std::vector<std::string> results(n);
  for (std::size_t i = 0; i < n; ++i) {
    sys.submit("op" + std::to_string(i),
               [&results, i, latencies](const std::string& r, double lat) {
                 results[i] = r;
                 if (latencies) latencies->push_back(lat);
               });
  }
  sim.run();
  return results;
}

/// Safety: executed-op sequences of correct replicas are prefix-ordered.
void expect_logs_consistent(const BftSystem& sys,
                            const std::set<std::size_t>& faulty) {
  const std::vector<std::string>* longest = nullptr;
  for (std::size_t i = 0; i < sys.n(); ++i) {
    if (faulty.count(i)) continue;
    const auto& log = sys.replica(i).executed_ops();
    if (!longest || log.size() > longest->size()) longest = &log;
  }
  ASSERT_NE(longest, nullptr);
  for (std::size_t i = 0; i < sys.n(); ++i) {
    if (faulty.count(i)) continue;
    const auto& log = sys.replica(i).executed_ops();
    for (std::size_t k = 0; k < log.size(); ++k) {
      EXPECT_EQ(log[k], (*longest)[k])
          << "replica " << i << " diverges at index " << k;
    }
  }
}

class BftSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BftSweep, FaultFreeOrderingAndExecution) {
  EventSim sim;
  BftSystem sys(sim, config(GetParam()), [] {
    return std::make_unique<LogService>();
  });
  const auto results = run_ops(sim, sys, 20);
  EXPECT_EQ(sys.completed_requests(), 20u);
  // Concurrent submissions may be ordered arbitrarily (network jitter),
  // but each result must be op i executed at *some* agreed log position.
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::string suffix = ":op" + std::to_string(i);
    EXPECT_NE(results[i].find(suffix), std::string::npos) << results[i];
  }
  expect_logs_consistent(sys, {});
  // All correct replicas executed everything, in the same total order.
  for (std::size_t r = 0; r < sys.n(); ++r) {
    EXPECT_EQ(sys.replica(r).executed_ops().size(), 20u);
  }
}

TEST_P(BftSweep, ToleratesFCrashedBackups) {
  const std::size_t f = GetParam();
  EventSim sim;
  BftSystem sys(sim, config(f), [] { return std::make_unique<LogService>(); });
  std::set<std::size_t> crashed;
  for (std::size_t i = 0; i < f; ++i) {
    sys.crash(sys.n() - 1 - i);  // crash backups, keep primary 0
    crashed.insert(sys.n() - 1 - i);
  }
  const auto results = run_ops(sim, sys, 10);
  EXPECT_EQ(sys.completed_requests(), 10u);
  expect_logs_consistent(sys, crashed);
}

TEST_P(BftSweep, ViewChangeOnCrashedPrimary) {
  const std::size_t f = GetParam();
  EventSim sim;
  BftSystem sys(sim, config(f), [] { return std::make_unique<LogService>(); });
  sys.crash(0);  // the initial primary
  const auto results = run_ops(sim, sys, 5);
  EXPECT_EQ(sys.completed_requests(), 5u);
  // Some correct replica moved past view 0.
  bool advanced = false;
  for (std::size_t r = 1; r < sys.n(); ++r) {
    advanced |= sys.replica(r).view() > 0;
  }
  EXPECT_TRUE(advanced);
  expect_logs_consistent(sys, {0});
}

TEST_P(BftSweep, MaliciousRepliesMaskedByClient) {
  const std::size_t f = GetParam();
  EventSim sim;
  BftSystem sys(sim, config(f), [] { return std::make_unique<LogService>(); });
  for (std::size_t i = 0; i < f; ++i) sys.make_malicious(1 + i);
  const auto results = run_ops(sim, sys, 10);
  EXPECT_EQ(sys.completed_requests(), 10u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    // f+1 matching replies can only come from correct replicas.
    EXPECT_EQ(results[i].find("#corrupt"), std::string::npos);
    const std::string suffix = ":op" + std::to_string(i);
    EXPECT_NE(results[i].find(suffix), std::string::npos) << results[i];
  }
}

INSTANTIATE_TEST_SUITE_P(FSweep, BftSweep, ::testing::Values(1u, 2u),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "f" + std::to_string(i.param);
                         });

TEST(BftTest, NEquals3FPlus1) {
  EventSim sim;
  BftSystem sys(sim, config(2), [] { return std::make_unique<LogService>(); });
  EXPECT_EQ(sys.n(), 7u);
  EXPECT_EQ(sys.f(), 2u);
}

TEST(BftTest, CheckpointingAdvancesWatermarkAndKeepsWorking) {
  EventSim sim;
  SystemConfig cfg = config(1);
  cfg.checkpoint_interval = 8;
  BftSystem sys(sim, cfg, [] { return std::make_unique<LogService>(); });
  // Run well past several checkpoint intervals; the sequence window is
  // 128, so without GC this would eventually stall.
  const auto results = run_ops(sim, sys, 100);
  EXPECT_EQ(sys.completed_requests(), 100u);
  for (std::size_t r = 0; r < sys.n(); ++r) {
    EXPECT_EQ(sys.replica(r).last_executed(), 100u);
  }
}

TEST(BftTest, LossyNetworkStillLives) {
  EventSim sim;
  SystemConfig cfg = config(1, 5);
  cfg.drop_prob = 0.05;
  cfg.client_retry_s = 0.8;
  BftSystem sys(sim, cfg, [] { return std::make_unique<LogService>(); });
  run_ops(sim, sys, 15);
  EXPECT_EQ(sys.completed_requests(), 15u);
  expect_logs_consistent(sys, {});
}

TEST(BftTest, LatencyIsAFewMessageDelays) {
  EventSim sim;
  BftSystem sys(sim, config(1), [] { return std::make_unique<LogService>(); });
  std::vector<double> latencies;
  run_ops(sim, sys, 10, &latencies);
  ASSERT_EQ(latencies.size(), 10u);
  for (double lat : latencies) {
    // request + pre-prepare + prepare + commit + reply = 5 one-way hops
    // of ~2-3 ms each; anything above 100 ms means retries/view changes.
    EXPECT_GT(lat, 0.004);
    EXPECT_LT(lat, 0.1);
  }
}

TEST(BftTest, SequentialViewChangesSurviveTwoCrashedPrimaries) {
  EventSim sim;
  BftSystem sys(sim, config(2), [] { return std::make_unique<LogService>(); });
  sys.crash(0);
  sys.crash(1);  // views 0 and 1 are both dead
  run_ops(sim, sys, 5);
  EXPECT_EQ(sys.completed_requests(), 5u);
  expect_logs_consistent(sys, {0, 1});
  bool reached_view2 = false;
  for (std::size_t r = 2; r < sys.n(); ++r) {
    reached_view2 |= sys.replica(r).view() >= 2;
  }
  EXPECT_TRUE(reached_view2);
}

TEST(BftTest, RetransmittedRequestExecutesOnce) {
  EventSim sim;
  SystemConfig cfg = config(1);
  cfg.client_retry_s = 0.05;  // aggressive retries duplicate requests
  BftSystem sys(sim, cfg, [] { return std::make_unique<LogService>(); });
  const auto results = run_ops(sim, sys, 5);
  EXPECT_EQ(sys.completed_requests(), 5u);
  for (std::size_t r = 0; r < sys.n(); ++r) {
    EXPECT_EQ(sys.replica(r).executed_ops().size(), 5u)
        << "duplicate execution on replica " << r;
  }
}

TEST(BftTest, BatchingOrdersManyRequestsInFewSlots) {
  EventSim sim;
  SystemConfig cfg = config(1);
  cfg.batch_size = 8;
  BftSystem sys(sim, cfg, [] { return std::make_unique<LogService>(); });
  const auto results = run_ops(sim, sys, 50);
  EXPECT_EQ(sys.completed_requests(), 50u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::string suffix = ":op" + std::to_string(i);
    EXPECT_NE(results[i].find(suffix), std::string::npos) << results[i];
  }
  expect_logs_consistent(sys, {});
  // All 50 ops executed, but batching packed them into far fewer
  // agreement slots.
  for (std::size_t r = 0; r < sys.n(); ++r) {
    EXPECT_EQ(sys.replica(r).executed_ops().size(), 50u);
    EXPECT_LT(sys.replica(r).last_executed(), 20u);
  }
}

TEST(BftTest, BatchingSurvivesPrimaryCrash) {
  EventSim sim;
  SystemConfig cfg = config(1);
  cfg.batch_size = 8;
  BftSystem sys(sim, cfg, [] { return std::make_unique<LogService>(); });
  sys.crash(0);
  run_ops(sim, sys, 20);
  EXPECT_EQ(sys.completed_requests(), 20u);
  expect_logs_consistent(sys, {0});
}

TEST(BftTest, BatchingImprovesThroughput) {
  auto ops_time = [](std::size_t batch) {
    EventSim sim;
    SystemConfig cfg = config(1, 7);
    cfg.batch_size = batch;
    cfg.checkpoint_interval = 64;
    BftSystem sys(sim, cfg, [] { return std::make_unique<LogService>(); });
    double last_done = 0;
    for (std::size_t i = 0; i < 200; ++i) {
      sys.submit("op" + std::to_string(i),
                 [&sim, &last_done](const std::string&, double) {
                   last_done = sim.now();
                 });
    }
    sim.run();
    EXPECT_EQ(sys.completed_requests(), 200u);
    return last_done;  // not sim.now(): client retry timers pad the tail
  };
  // Larger batches finish the same request load in less simulated time
  // (fewer protocol rounds in sequence).
  EXPECT_LT(ops_time(16), ops_time(1));
}

TEST(BftTest, PipelineDepthsAllAgreeAndComplete) {
  // Whatever the in-flight cap, safety and completeness must hold and
  // every correct replica must execute the same total order.
  for (std::size_t depth : {std::size_t(1), std::size_t(2), std::size_t(4),
                            std::size_t(8)}) {
    EventSim sim;
    SystemConfig cfg = config(1);
    cfg.batch_size = 4;
    cfg.pipeline_depth = depth;
    BftSystem sys(sim, cfg, [] { return std::make_unique<LogService>(); });
    const auto results = run_ops(sim, sys, 40);
    EXPECT_EQ(sys.completed_requests(), 40u) << "depth " << depth;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const std::string suffix = ":op" + std::to_string(i);
      EXPECT_NE(results[i].find(suffix), std::string::npos)
          << "depth " << depth << ": " << results[i];
    }
    expect_logs_consistent(sys, {});
    for (std::size_t r = 0; r < sys.n(); ++r) {
      EXPECT_EQ(sys.replica(r).executed_ops().size(), 40u)
          << "depth " << depth << " replica " << r;
    }
  }
}

TEST(BftTest, PipelineDepthSurvivesPrimaryCrash) {
  EventSim sim;
  SystemConfig cfg = config(1);
  cfg.batch_size = 4;
  cfg.pipeline_depth = 4;
  BftSystem sys(sim, cfg, [] { return std::make_unique<LogService>(); });
  sys.crash(0);
  run_ops(sim, sys, 20);
  EXPECT_EQ(sys.completed_requests(), 20u);
  expect_logs_consistent(sys, {0});
}

TEST(BftTest, DepthZeroAutoMatchesLegacyBehaviour) {
  // pipeline_depth = 0 must reproduce the pre-knob defaults bit-exactly:
  // depth 2 when batching, unlimited otherwise. Latency transcripts are
  // a full behavioural fingerprint of the simulated protocol run.
  auto transcript = [](std::size_t batch, std::size_t depth) {
    EventSim sim;
    SystemConfig cfg = config(1, 11);
    cfg.batch_size = batch;
    cfg.pipeline_depth = depth;
    cfg.checkpoint_interval = 64;
    BftSystem sys(sim, cfg, [] { return std::make_unique<LogService>(); });
    std::vector<double> lat;
    run_ops(sim, sys, 30, &lat);
    EXPECT_EQ(sys.completed_requests(), 30u);
    return lat;
  };
  EXPECT_EQ(transcript(8, 0), transcript(8, 2));
  EXPECT_EQ(transcript(1, 0), transcript(1, std::size_t(-1)));
}

TEST(BftTest, DeeperPipelineImprovesBatchedThroughput) {
  auto finish_time = [](std::size_t depth) {
    EventSim sim;
    SystemConfig cfg = config(1, 7);
    cfg.batch_size = 8;
    cfg.pipeline_depth = depth;
    cfg.checkpoint_interval = 64;
    BftSystem sys(sim, cfg, [] { return std::make_unique<LogService>(); });
    double last_done = 0;
    for (std::size_t i = 0; i < 200; ++i) {
      sys.submit("op" + std::to_string(i),
                 [&sim, &last_done](const std::string&, double) {
                   last_done = sim.now();
                 });
    }
    sim.run();
    EXPECT_EQ(sys.completed_requests(), 200u);
    return last_done;
  };
  // Overlapping consecutive agreement rounds hides the three-phase
  // latency; depth 1 serialises them and must be strictly slower.
  EXPECT_LT(finish_time(4), finish_time(1));
}

TEST(BftTest, PipelinedRunsAreDeterministicPerConfig) {
  auto run_once = [](std::size_t depth) {
    EventSim sim;
    SystemConfig cfg = config(1, 77);
    cfg.batch_size = 4;
    cfg.pipeline_depth = depth;
    BftSystem sys(sim, cfg, [] { return std::make_unique<LogService>(); });
    std::vector<double> lat;
    run_ops(sim, sys, 12, &lat);
    return lat;
  };
  EXPECT_EQ(run_once(2), run_once(2));
  EXPECT_EQ(run_once(6), run_once(6));
}

TEST(BftTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    EventSim sim;
    BftSystem sys(sim, config(1, 77),
                  [] { return std::make_unique<LogService>(); });
    std::vector<double> lat;
    run_ops(sim, sys, 8, &lat);
    return lat;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace clusterbft::bftsmr
