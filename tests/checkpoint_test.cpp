// Adaptive checkpointing + dynamic replication degree.
//
// Covers the checkpoint store in isolation (content-addressed entries,
// adoption, conviction invalidation) and the controller integration: the
// cost model materialises verified mid-chain relations, later sessions
// adopt them, scoped restart waves re-execute only the unverified
// ancestor closure, and adaptive assurance launches f+1 chains and
// escalates only on fault evidence — with every verified output
// bit-identical to the reference interpreter.
#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include "baseline/presets.hpp"
#include "core/controller.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"
#include "protocol/seam.hpp"
#include "workloads/airline.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"
#include "workloads/weather.hpp"

namespace clusterbft::core {
namespace {

using cluster::AdversaryPolicy;
using cluster::EventSim;
using cluster::ExecutionTracker;
using cluster::TrackerConfig;
using dataflow::Relation;

struct World {
  EventSim sim;
  mapreduce::Dfs dfs{16384};
  std::unique_ptr<ExecutionTracker> tracker;
  std::unique_ptr<protocol::LoopbackSeam> seam;
  std::unique_ptr<ClusterBft> controller;
  std::map<std::string, Relation> inputs;

  explicit World(TrackerConfig cfg = {}) {
    tracker = std::make_unique<ExecutionTracker>(sim, dfs, cfg);
    seam = std::make_unique<protocol::LoopbackSeam>(*tracker);
    controller = std::make_unique<ClusterBft>(sim, dfs, seam->transport,
                                              seam->programs);
  }

  void load_weather() {
    workloads::WeatherConfig w;
    w.num_stations = 150;
    w.readings_per_station = 10;
    Relation rel = workloads::generate_weather(w);
    inputs["weather/gsod"] = rel;
    dfs.write("weather/gsod", std::move(rel));
  }

  void load_airline(std::uint64_t flights = 3000) {
    workloads::AirlineConfig a;
    a.num_flights = flights;
    Relation rel = workloads::generate_flights(a);
    inputs["airline/flights"] = rel;
    dfs.write("airline/flights", std::move(rel));
  }

  void expect_outputs_match_interpreter(const ClientRequest& req,
                                        const ScriptResult& res) {
    const auto plan = dataflow::parse_script(req.script);
    const auto golden = dataflow::interpret(plan, inputs);
    ASSERT_EQ(res.outputs.size(), golden.size());
    for (const auto& [path, rel] : golden) {
      EXPECT_EQ(res.outputs.at(path).sorted_rows(), rel.sorted_rows())
          << path;
    }
  }
};

crypto::Digest256 key_of(std::uint8_t seed) {
  crypto::Digest256 d;
  d.bytes.fill(seed);
  return d;
}

TEST(CheckpointStoreTest, InsertLookupAdoptInvalidate) {
  CheckpointStore store;
  const common::RoleGuard held(common::scheduler_thread_role);
  EXPECT_EQ(store.lookup(key_of(1)), nullptr);

  CheckpointStore::Entry e;
  e.path = "ckpt/aa";
  e.bytes = 100;
  e.contributors = {2, 5};
  store.insert(key_of(1), e);
  e.path = "ckpt/bb";
  e.contributors = {7};
  store.insert(key_of(2), e);

  const CheckpointStore::Entry* got = store.lookup(key_of(1));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->path, "ckpt/aa");
  EXPECT_EQ(store.stats().writes, 2u);
  EXPECT_EQ(store.stats().bytes_written, 200u);

  // First insert wins: a re-derived entry for the same content address
  // must not clobber the original (same bytes by construction).
  CheckpointStore::Entry dup;
  dup.path = "ckpt/other";
  store.insert(key_of(1), dup);
  EXPECT_EQ(store.lookup(key_of(1))->path, "ckpt/aa");
  EXPECT_EQ(store.stats().writes, 2u);

  store.adopted();
  EXPECT_EQ(store.stats().adoptions, 1u);

  // Convicting node 5 drops exactly the entries it contributed to.
  EXPECT_EQ(store.invalidate_node(5), 1u);
  EXPECT_EQ(store.lookup(key_of(1)), nullptr);
  ASSERT_NE(store.lookup(key_of(2)), nullptr);
  EXPECT_EQ(store.stats().invalidated, 1u);
  EXPECT_EQ(store.invalidate_node(5), 0u);
}

ClientRequest checkpointed(ClientRequest req) {
  req.adaptive_checkpoints = true;
  return req;
}

ClientRequest adaptive(ClientRequest req) {
  req.assurance = Assurance::kAdaptive;
  return req;
}

TEST(CheckpointTest, FaultFreeRunMaterialisesSelectedRelations) {
  World w;
  w.load_weather();
  const auto req = checkpointed(baseline::cluster_bft(
      workloads::weather_average_analysis(), "ckpt", 1, 2, 2));
  const auto res = w.controller->execute(req);
  EXPECT_TRUE(res.verified);
  w.expect_outputs_match_interpreter(req, res);
  // The cost model selected at least one mid-chain verification point and
  // the verified relation landed at its content address.
  EXPECT_GT(res.metrics.checkpoints, 0u);
  EXPECT_GT(res.metrics.checkpoint_bytes, 0u);
  const auto stats = w.controller->checkpoint_stats();
  EXPECT_EQ(stats.writes, res.metrics.checkpoints);
  EXPECT_EQ(stats.adoptions, 0u);
}

TEST(CheckpointTest, SecondSessionAdoptsExistingCheckpoint) {
  World w;
  w.load_weather();
  const auto req = checkpointed(baseline::cluster_bft(
      workloads::weather_average_analysis(), "ckpt", 1, 2, 2));
  const auto first = w.controller->execute(req);
  ASSERT_TRUE(first.verified);
  const auto writes = w.controller->checkpoint_stats().writes;
  ASSERT_GT(writes, 0u);

  // Same script, same inputs, same policy — same content address. The
  // second session re-verifies but adopts the durable bytes instead of
  // rewriting them.
  const auto second = w.controller->execute(req);
  EXPECT_TRUE(second.verified);
  w.expect_outputs_match_interpreter(req, second);
  const auto stats = w.controller->checkpoint_stats();
  EXPECT_EQ(stats.writes, writes);
  EXPECT_GT(stats.adoptions, 0u);
}

TEST(CheckpointTest, CommissionFaultStillVerifiesWithScopedRestarts) {
  TrackerConfig cfg;
  cfg.policies[5] = AdversaryPolicy{.commission_prob = 1.0};
  World w(cfg);
  w.load_airline();
  const auto req = checkpointed(baseline::cluster_bft(
      workloads::airline_top20_analysis(), "ckpt", 1, 2, 2));
  const auto res = w.controller->execute(req);
  EXPECT_TRUE(res.verified);
  EXPECT_GT(res.commission_faults_seen, 0u);
  EXPECT_GT(res.metrics.waves, 2u);  // a restart wave was needed
  w.expect_outputs_match_interpreter(req, res);
}

TEST(CheckpointTest, ScopedRestartsRunNoMoreReplicasThanFullWaves) {
  // Same deterministic fault in both worlds; the only difference is
  // whether restart waves re-execute the whole unverified DAG or just
  // the disputed job's unverified-ancestor closure.
  TrackerConfig cfg;
  cfg.policies[5] = AdversaryPolicy{.commission_prob = 1.0};
  const auto base = baseline::cluster_bft(
      workloads::airline_top20_analysis(), "ckpt", 1, 2, 2);

  World off(cfg);
  off.load_airline();
  const auto res_off = off.controller->execute(base);
  ASSERT_TRUE(res_off.verified);

  World on(cfg);
  on.load_airline();
  const auto res_on = on.controller->execute(checkpointed(base));
  ASSERT_TRUE(res_on.verified);
  on.expect_outputs_match_interpreter(base, res_on);

  EXPECT_LE(res_on.metrics.runs, res_off.metrics.runs);
  for (const auto& [path, rel] : res_off.outputs) {
    EXPECT_EQ(res_on.outputs.at(path).sorted_rows(), rel.sorted_rows());
  }
}

TEST(CheckpointTest, AdaptiveAssuranceRunsStrictlyFewerReplicasFaultFree) {
  // Static 2f+1 pessimism vs adaptive f+1-first: with no faults the
  // adaptive session never escalates, so it executes strictly fewer job
  // replicas — and the verified outputs are bit-identical.
  const auto static_req = baseline::cluster_bft(
      workloads::weather_average_analysis(), "assur", 1, 3, 2);

  World st;
  st.load_weather();
  const auto res_static = st.controller->execute(static_req);
  ASSERT_TRUE(res_static.verified);

  World ad;
  ad.load_weather();
  const auto res_adaptive = ad.controller->execute(adaptive(static_req));
  ASSERT_TRUE(res_adaptive.verified);
  EXPECT_EQ(res_adaptive.metrics.escalations, 0u);
  EXPECT_LT(res_adaptive.metrics.runs, res_static.metrics.runs);
  ad.expect_outputs_match_interpreter(static_req, res_adaptive);
  for (const auto& [path, rel] : res_static.outputs) {
    EXPECT_EQ(res_adaptive.outputs.at(path).sorted_rows(),
              rel.sorted_rows());
  }
}

TEST(CheckpointTest, AdaptiveAssuranceEscalatesOnDisagreement) {
  TrackerConfig cfg;
  cfg.policies[3] = AdversaryPolicy{.commission_prob = 1.0};
  World w(cfg);
  w.load_weather();
  // f+1 = 2 initial chains; the deviant chain forces a 1-vs-1 tie, which
  // escalates the degree (journaled + audited) until a majority exists.
  const auto req = adaptive(baseline::cluster_bft(
      workloads::weather_average_analysis(), "assur", 1, 3, 2));
  const auto res = w.controller->execute(req);
  EXPECT_TRUE(res.verified);
  EXPECT_GT(res.metrics.escalations, 0u);
  EXPECT_GT(res.commission_faults_seen, 0u);
  w.expect_outputs_match_interpreter(req, res);
}

TEST(CheckpointTest, AdaptiveWithCheckpointsVerifiesUnderFault) {
  // Both knobs together: f+1-first chains, checkpointed boundaries, and
  // scoped escalation waves jumping the scheduler queue.
  TrackerConfig cfg;
  cfg.policies[5] = AdversaryPolicy{.commission_prob = 1.0};
  World w(cfg);
  w.load_airline();
  const auto req = adaptive(checkpointed(baseline::cluster_bft(
      workloads::airline_top20_analysis(), "both", 1, 3, 2)));
  const auto res = w.controller->execute(req);
  EXPECT_TRUE(res.verified);
  EXPECT_GT(res.metrics.escalations, 0u);
  w.expect_outputs_match_interpreter(req, res);
}

}  // namespace
}  // namespace clusterbft::core
