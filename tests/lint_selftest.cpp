// Self-tests for the two static-analysis layers:
//
//  * the regex determinism lint (tools/lint/determinism_lint.py): the
//    fixtures under tools/lint/fixtures seed a known number of
//    violations per rule plus one lint:allow'ed occurrence per rule;
//    the lint must report exactly those counts, honour every allow
//    marker, and report the real src/ tree as clean.
//
//  * the AST-grounded analyzer (tools/analyze/analyze.py): the
//    fixtures under tools/analyze/fixtures stage evasions the per-line
//    regexes cannot see (alias-of-alias unordered containers, helper
//    indirection, entropy two calls below a task body). The analyzer's
//    digest-reachability pass must convict every *_bad fixture with an
//    exact per-rule count, keep every *_good fixture clean, and honour
//    lint:allow markers that name ANALYZER rule ids. The same fixture
//    set must be clean under the regex lint -- that is the point: each
//    staged violation is invisible to the regexes.
//
// Both tools are Python; when no python3 is on PATH the tests skip
// (the ctest targets are likewise only registered when CMake finds an
// interpreter).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

constexpr const char* kSourceDir = CBFT_SOURCE_DIR;

bool python_available() {
  return std::system("python3 -c 'pass' > /dev/null 2>&1") == 0;
}

struct ToolRun {
  int exit_code = -1;
  std::string output;
};

/// Run `python3 <script> <flags> <target>` and capture stdout.
ToolRun run_tool(const std::string& script, const std::string& target,
                 const std::string& flags) {
  const std::string cmd = std::string("python3 ") + kSourceDir + "/" + script +
                          " " + flags + " " + target + " 2>/dev/null";
  ToolRun r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  r.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return r;
}

ToolRun run_lint(const std::string& target, const std::string& flags) {
  return run_tool("tools/lint/determinism_lint.py", target, flags);
}

ToolRun run_analyzer(const std::string& target, const std::string& flags) {
  return run_tool("tools/analyze/analyze.py", target,
                  flags + " --frontend text");
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

struct RuleCount {
  const char* rule;
  std::size_t count;
};

// Expected violation count per regex-lint rule over tools/lint/fixtures.
// unseeded-random fires twice: once for the classic rand()/random_device
// shapes and once for the brace-init mt19937 seeded from a time-derived
// helper (the evasion the rule was extended to catch).
const std::array<RuleCount, 11> kLintExpected = {{
    {"unordered-container", 1},
    {"unseeded-random", 2},
    {"wall-clock", 1},
    {"pointer-keyed-container", 1},
    {"raw-threading", 1},
    {"cpu-dispatch", 1},
    {"core-async-dispatch", 1},
    {"journal-before-send", 1},
    {"uninit-pod-member", 1},
    {"trust-boundary-include", 2},
    {"session-isolation", 1},
}};

// Expected finding count per analyzer rule over tools/analyze/fixtures:
// three unordered iterations (alias evasion, helper indirection, member
// iteration -- the fourth, acknowledged via lint:allow(unordered-
// iteration), must be suppressed), two wall-clock reads (entropy two
// calls below a task body; a backend-from-env pick feeding a digest
// stream), plus one each of the other rules.
const std::array<RuleCount, 5> kAnalyzerExpected = {{
    {"unordered-iteration", 3},
    {"pointer-keyed-order", 1},
    {"wall-clock-reachable", 2},
    {"unseeded-rng-reachable", 1},
    {"float-accumulation", 1},
}};

class LintSelfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!python_available()) GTEST_SKIP() << "python3 not on PATH";
  }
};

TEST_F(LintSelfTest, FixtureTriggersEveryRuleWithExpectedCount) {
  const ToolRun r =
      run_lint(std::string(kSourceDir) + "/tools/lint/fixtures", "--json");
  ASSERT_EQ(r.exit_code, 1) << r.output;  // violations found -> exit 1
  std::size_t total = 0;
  for (const RuleCount& expect : kLintExpected) {
    EXPECT_EQ(count_occurrences(
                  r.output, std::string("\"rule\": \"") + expect.rule + "\""),
              expect.count)
        << "rule " << expect.rule << " did not fire exactly " << expect.count
        << " time(s):\n"
        << r.output;
    total += expect.count;
  }
  // The expected counts above — nothing else.
  EXPECT_EQ(count_occurrences(r.output, "\"rule\": "), total) << r.output;
}

TEST_F(LintSelfTest, AllowMarkerSuppresses) {
  const ToolRun r =
      run_lint(std::string(kSourceDir) + "/tools/lint/fixtures", "--json");
  ASSERT_EQ(r.exit_code, 1) << r.output;
  // Every allowed occurrence carries the marker on its line; none of the
  // reported violation texts may contain it.
  EXPECT_EQ(count_occurrences(r.output, "lint:allow"), 0u) << r.output;
}

TEST_F(LintSelfTest, SrcTreeIsClean) {
  const ToolRun r = run_lint(std::string(kSourceDir) + "/src", "--json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "\"rule\": "), 0u) << r.output;
}

TEST_F(LintSelfTest, RuleTableIsMachineReadable) {
  const ToolRun r = run_lint("", "--list-rules");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  for (const RuleCount& expect : kLintExpected) {
    EXPECT_EQ(count_occurrences(
                  r.output, std::string("\"id\": \"") + expect.rule + "\""),
              1u)
        << "rule " << expect.rule << " missing from --list-rules:\n"
        << r.output;
  }
}

class AnalyzerSelfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!python_available()) GTEST_SKIP() << "python3 not on PATH";
  }
};

TEST_F(AnalyzerSelfTest, EvasionFixturesConvictedWithExactCounts) {
  const ToolRun r = run_analyzer(
      std::string(kSourceDir) + "/tools/analyze/fixtures", "--json");
  ASSERT_EQ(r.exit_code, 1) << r.output;  // findings -> exit 1
  std::size_t total = 0;
  for (const RuleCount& expect : kAnalyzerExpected) {
    EXPECT_EQ(count_occurrences(
                  r.output, std::string("\"rule\": \"") + expect.rule + "\""),
              expect.count)
        << "analyzer rule " << expect.rule << " did not fire exactly "
        << expect.count << " time(s):\n"
        << r.output;
    total += expect.count;
  }
  EXPECT_EQ(count_occurrences(r.output, "\"rule\": "), total) << r.output;
}

TEST_F(AnalyzerSelfTest, GoodFixturesAndSuppressionsStayClean) {
  const ToolRun r = run_analyzer(
      std::string(kSourceDir) + "/tools/analyze/fixtures", "--json");
  ASSERT_EQ(r.exit_code, 1) << r.output;
  // Negative controls: the ordered-map digest, the unreachable
  // unordered iteration, and the debug-only helper must yield no
  // FINDING (the `"function":` spelling below only occurs in findings;
  // the digest_feeders listing legitimately names some of them).
  EXPECT_EQ(count_occurrences(r.output, "_good.cpp\","), 0u) << r.output;
  for (const char* fn : {"emit_ordered_digest", "offline_histogram",
                         "flatten_debug_rows",
                         // Env-driven backend pick unreachable from any
                         // digest root: a wall_clock event whose bytes
                         // cannot reach a digest stays unconvicted.
                         "select_backend_at_startup",
                         // The acknowledged member iteration carries
                         // lint:allow(unordered-iteration) -- the
                         // analyzer's own vocabulary -- and is
                         // suppressed.
                         "TupleCache::digest_cache_acknowledged"}) {
    EXPECT_EQ(count_occurrences(
                  r.output, std::string("\"function\": \"") + fn + "\""),
              0u)
        << "unexpected finding in " << fn << ":\n"
        << r.output;
  }
}

TEST_F(AnalyzerSelfTest, FixturesInvisibleToRegexLint) {
  // The staged evasions exist precisely because the per-line regexes
  // cannot see them: the same fixture set must be CLEAN under the
  // regex lint.
  const ToolRun r =
      run_lint(std::string(kSourceDir) + "/tools/analyze/fixtures", "--json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "\"rule\": "), 0u) << r.output;
}

TEST_F(AnalyzerSelfTest, SrcTreeMatchesBaseline) {
  const ToolRun r = run_tool("tools/analyze/report.py",
                             std::string(kSourceDir) + "/src",
                             "--frontend text");
  // 0 = clean against baseline; 3 would mean "skipped" which the text
  // frontend never reports.
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(AnalyzerSelfTest, RuleTableIsMachineReadable) {
  const ToolRun r = run_analyzer("", "--list-rules");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  for (const RuleCount& expect : kAnalyzerExpected) {
    EXPECT_EQ(count_occurrences(
                  r.output, std::string("\"id\": \"") + expect.rule + "\""),
              1u)
        << "analyzer rule " << expect.rule << " missing from --list-rules:\n"
        << r.output;
  }
}

}  // namespace
