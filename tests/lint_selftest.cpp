// Self-test for the determinism lint (tools/lint/determinism_lint.py):
// the fixture files under tools/lint/fixtures seed exactly one violation
// per rule plus one lint:allow'ed occurrence per rule; the lint must
// report each rule exactly once, honour every allow marker, and report
// the real src/ tree as clean.
//
// The lint is a Python script; when no python3 is on PATH the tests skip
// (the `determinism_lint` ctest target is likewise only registered when
// CMake finds an interpreter).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

constexpr const char* kSourceDir = CBFT_SOURCE_DIR;

bool python_available() {
  return std::system("python3 -c 'pass' > /dev/null 2>&1") == 0;
}

struct LintRun {
  int exit_code = -1;
  std::string output;
};

/// Run the lint over `target` and capture stdout (JSON mode).
LintRun run_lint(const std::string& target, const std::string& flags) {
  const std::string cmd = std::string("python3 ") + kSourceDir +
                          "/tools/lint/determinism_lint.py " + flags + " " +
                          target + " 2>/dev/null";
  LintRun r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  r.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return r;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

const std::array<const char*, 9> kRuleIds = {
    "unordered-container", "unseeded-random",  "wall-clock",
    "pointer-keyed-container", "raw-threading", "core-async-dispatch",
    "journal-before-send", "uninit-pod-member", "trust-boundary-include"};

class LintSelfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!python_available()) GTEST_SKIP() << "python3 not on PATH";
  }
};

TEST_F(LintSelfTest, FixtureTriggersEveryRuleExactlyOnce) {
  const LintRun r = run_lint(
      std::string(kSourceDir) + "/tools/lint/fixtures", "--json");
  ASSERT_EQ(r.exit_code, 1) << r.output;  // violations found -> exit 1
  for (const char* rule : kRuleIds) {
    EXPECT_EQ(count_occurrences(r.output,
                                std::string("\"rule\": \"") + rule + "\""),
              1u)
        << "rule " << rule << " did not fire exactly once:\n"
        << r.output;
  }
  // One violation per rule — nothing else.
  EXPECT_EQ(count_occurrences(r.output, "\"rule\": "), kRuleIds.size())
      << r.output;
}

TEST_F(LintSelfTest, AllowMarkerSuppresses) {
  const LintRun r = run_lint(
      std::string(kSourceDir) + "/tools/lint/fixtures", "--json");
  ASSERT_EQ(r.exit_code, 1) << r.output;
  // Every allowed occurrence carries the marker on its line; none of the
  // reported violation texts may contain it.
  EXPECT_EQ(count_occurrences(r.output, "lint:allow"), 0u) << r.output;
}

TEST_F(LintSelfTest, SrcTreeIsClean) {
  const LintRun r = run_lint(std::string(kSourceDir) + "/src", "--json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(count_occurrences(r.output, "\"rule\": "), 0u) << r.output;
}

TEST_F(LintSelfTest, RuleTableIsMachineReadable) {
  const LintRun r = run_lint("", "--list-rules");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  for (const char* rule : kRuleIds) {
    EXPECT_EQ(count_occurrences(r.output,
                                std::string("\"id\": \"") + rule + "\""),
              1u)
        << "rule " << rule << " missing from --list-rules:\n"
        << r.output;
  }
}

}  // namespace
