// End-to-end ClusterBFT integration tests: scripts run through parser,
// graph analyzer, compiler, the simulated cluster, and the verifier —
// with and without Byzantine nodes — and the verified outputs are checked
// against the reference interpreter.
#include "core/controller.hpp"
#include "protocol/seam.hpp"

#include <gtest/gtest.h>

#include "baseline/presets.hpp"
#include "common/check.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"
#include "workloads/airline.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"
#include "workloads/weather.hpp"

namespace clusterbft::core {
namespace {

using cluster::AdversaryPolicy;
using cluster::EventSim;
using cluster::ExecutionTracker;
using cluster::TrackerConfig;
using dataflow::Relation;

struct World {
  EventSim sim;
  mapreduce::Dfs dfs{16384};
  std::unique_ptr<ExecutionTracker> tracker;
  std::unique_ptr<protocol::LoopbackSeam> seam;
  std::unique_ptr<ClusterBft> controller;
  std::map<std::string, Relation> inputs;

  explicit World(TrackerConfig cfg = {}) {
    cfg.num_nodes = cfg.num_nodes == 16 ? 16 : cfg.num_nodes;
    tracker = std::make_unique<ExecutionTracker>(sim, dfs, cfg);
    seam = std::make_unique<protocol::LoopbackSeam>(*tracker);
    controller = std::make_unique<ClusterBft>(sim, dfs, seam->transport,
                                              seam->programs);
  }

  void load_twitter(std::uint64_t edges = 2000) {
    workloads::TwitterConfig tw;
    tw.num_edges = edges;
    tw.num_users = 300;
    Relation rel = workloads::generate_twitter_edges(tw);
    inputs["twitter/edges"] = rel;
    dfs.write("twitter/edges", std::move(rel));
  }

  void load_airline(std::uint64_t flights = 3000) {
    workloads::AirlineConfig a;
    a.num_flights = flights;
    Relation rel = workloads::generate_flights(a);
    inputs["airline/flights"] = rel;
    dfs.write("airline/flights", std::move(rel));
  }

  void load_weather() {
    workloads::WeatherConfig w;
    w.num_stations = 150;
    w.readings_per_station = 10;
    Relation rel = workloads::generate_weather(w);
    inputs["weather/gsod"] = rel;
    dfs.write("weather/gsod", std::move(rel));
  }

  void expect_outputs_match_interpreter(const ClientRequest& req,
                                        const ScriptResult& res) {
    const auto plan = dataflow::parse_script(req.script);
    const auto golden = dataflow::interpret(plan, inputs);
    ASSERT_EQ(res.outputs.size(), golden.size());
    for (const auto& [path, rel] : golden) {
      EXPECT_EQ(res.outputs.at(path).sorted_rows(), rel.sorted_rows())
          << path;
    }
  }
};

TrackerConfig with_commission_node(cluster::NodeId nid, double p = 1.0) {
  TrackerConfig cfg;
  cfg.policies[nid] = AdversaryPolicy{.commission_prob = p};
  return cfg;
}

TEST(ControllerTest, FaultFreeClusterBftVerifiesAllScripts) {
  struct Case {
    std::string script;
    void (World::*loader)(void);
  };
  World w;
  w.load_twitter();
  w.load_airline();
  w.load_weather();
  for (const std::string& script :
       {workloads::twitter_follower_analysis(),
        workloads::twitter_two_hop_analysis(),
        workloads::airline_top20_analysis(),
        workloads::weather_average_analysis()}) {
    const auto req = baseline::cluster_bft(script, "cbft", 1, 2, 2);
    const auto res = w.controller->execute(req);
    EXPECT_TRUE(res.verified);
    EXPECT_EQ(res.commission_faults_seen, 0u);
    EXPECT_EQ(res.metrics.waves, 2u);  // just the initial replicas
    w.expect_outputs_match_interpreter(req, res);
  }
}

TEST(ControllerTest, PurePigRunsOnceWithoutDigests) {
  World w;
  w.load_twitter();
  const auto req =
      baseline::pure_pig(workloads::twitter_follower_analysis(), "pure");
  const auto res = w.controller->execute(req);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.metrics.waves, 1u);
  EXPECT_EQ(res.metrics.digested, 0u);
  w.expect_outputs_match_interpreter(req, res);
}

TEST(ControllerTest, SingleExecutionComputesDigestsWithoutReplication) {
  World w;
  w.load_twitter();
  const auto req = baseline::single_execution(
      workloads::twitter_follower_analysis(), "single", 2);
  const auto res = w.controller->execute(req);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.metrics.waves, 1u);
  EXPECT_GT(res.metrics.digested, 0u);
}

TEST(ControllerTest, CommissionFaultTriggersRerunAndStillVerifies) {
  World w(with_commission_node(3));
  w.load_twitter();
  const auto req = baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "cbft", 1, 2, 1);
  const auto res = w.controller->execute(req);
  EXPECT_TRUE(res.verified);
  EXPECT_GT(res.metrics.waves, 2u);  // at least one rerun wave
  EXPECT_GT(res.commission_faults_seen, 0u);
  w.expect_outputs_match_interpreter(req, res);
  // The faulty node is among the suspects.
  EXPECT_NE(std::find(res.suspects.begin(), res.suspects.end(), 3u),
            res.suspects.end());
}

TEST(ControllerTest, ThreeReplicasMaskOneFaultWithoutRerun) {
  World w(with_commission_node(5));
  w.load_twitter();
  const auto req = baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "cbft", 1, 3, 1);
  const auto res = w.controller->execute(req);
  EXPECT_TRUE(res.verified);
  // 2f+1 = 3 replicas: the two honest ones agree immediately; no rerun.
  EXPECT_EQ(res.metrics.waves, 3u);
  w.expect_outputs_match_interpreter(req, res);
}

TEST(ControllerTest, OmissionNodeTimesOutAndReruns) {
  TrackerConfig cfg;
  cfg.policies[2] = AdversaryPolicy{.omission_prob = 1.0};
  World w(cfg);
  w.load_twitter(800);
  auto req = baseline::cluster_bft(workloads::twitter_follower_analysis(),
                                   "cbft", 1, 2, 1);
  req.verifier_timeout_s = 30.0;  // fail fast in the simulation
  const auto res = w.controller->execute(req);
  EXPECT_TRUE(res.verified);
  w.expect_outputs_match_interpreter(req, res);
}

TEST(ControllerTest, DigestLiarIsCaught) {
  TrackerConfig cfg;
  cfg.policies[1] = AdversaryPolicy{.commission_prob = 1.0,
                                    .lie_in_digest = true};
  World w(cfg);
  w.load_twitter();
  const auto req = baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "cbft", 1, 2, 1);
  const auto res = w.controller->execute(req);
  EXPECT_TRUE(res.verified);
  EXPECT_GT(res.commission_faults_seen, 0u);
  w.expect_outputs_match_interpreter(req, res);
}

TEST(ControllerTest, FullOutputBftAlsoSurvivesButReExecutesEverything) {
  // "P" reruns whole scripts; ClusterBFT reuses verified prefixes. On a
  // multi-job chain with an always-faulty node, C must run no more job
  // replicas than P.
  const auto script = workloads::weather_average_analysis();

  World wp(with_commission_node(3));
  wp.load_weather();
  auto preq = baseline::full_output_bft(script, "p", 1, 2);
  const auto pres = wp.controller->execute(preq);
  EXPECT_TRUE(pres.verified);
  wp.expect_outputs_match_interpreter(preq, pres);

  World wc(with_commission_node(3));
  wc.load_weather();
  auto creq = baseline::cluster_bft(script, "c", 1, 2, 2);
  const auto cres = wc.controller->execute(creq);
  EXPECT_TRUE(cres.verified);
  wc.expect_outputs_match_interpreter(creq, cres);

  EXPECT_LE(cres.metrics.runs, pres.metrics.runs + 1);
}

TEST(ControllerTest, ChunkedDigestsStillVerify) {
  World w;
  w.load_weather();
  auto req = baseline::cluster_bft(workloads::weather_average_analysis(),
                                   "cbft", 1, 2, 2, /*records_per_digest=*/100);
  const auto res = w.controller->execute(req);
  EXPECT_TRUE(res.verified);
  w.expect_outputs_match_interpreter(req, res);
}

TEST(ControllerTest, IndividualModeDigestsEveryVertex) {
  World w;
  w.load_twitter();
  const auto single_req = baseline::single_execution(
      workloads::twitter_follower_analysis(), "s1", 1);
  const auto res1 = w.controller->execute(single_req);
  const auto indiv_req = baseline::individual(
      workloads::twitter_follower_analysis(), "ind", 1, 2);
  const auto res2 = w.controller->execute(indiv_req);
  EXPECT_TRUE(res2.verified);
  // Individual digests strictly more data per replica than 1 point.
  EXPECT_GT(res2.metrics.digested / 2, res1.metrics.digested);
}

TEST(ControllerTest, GiveUpAfterMaxWavesWhenMajorityImpossible) {
  // Every node commission-faulty: no two replicas ever agree.
  TrackerConfig cfg;
  cfg.num_nodes = 16;
  for (cluster::NodeId n = 0; n < 16; ++n) {
    cfg.policies[n] = AdversaryPolicy{.commission_prob = 1.0};
  }
  World w(cfg);
  w.load_twitter(300);
  auto req = baseline::cluster_bft(workloads::twitter_follower_analysis(),
                                   "doomed", 1, 2, 1);
  req.max_rerun_waves = 2;
  const auto res = w.controller->execute(req);
  EXPECT_FALSE(res.verified);
  EXPECT_TRUE(res.outputs.empty());
}

TEST(ControllerTest, MissingInputFailsFast) {
  World w;
  const auto req = baseline::cluster_bft("a = LOAD 'absent' AS (x:long);\n"
                                         "STORE a INTO 'o';\n",
                                         "x", 1, 2, 1);
  EXPECT_THROW(w.controller->execute(req), CheckError);
}

TEST(ControllerTest, SuspicionThresholdEvictsByzantineNode) {
  TrackerConfig cfg;
  cfg.num_nodes = 6;
  cfg.policies[2] = AdversaryPolicy{.commission_prob = 1.0};
  World w(cfg);
  w.load_twitter(2000);
  auto req = baseline::cluster_bft(workloads::twitter_follower_analysis(),
                                   "evict", 1, 2, 1);
  // Run a few scripts; the faulty node accumulates suspicion.
  for (int i = 0; i < 3; ++i) {
    const auto res = w.controller->execute(req);
    EXPECT_TRUE(res.verified);
  }
  const auto evicted = w.controller->apply_suspicion_threshold(0.5);
  EXPECT_NE(std::find(evicted.begin(), evicted.end(), 2u), evicted.end());
  // Once evicted, scripts verify with no further commission faults (node
  // 2 no longer receives tasks).
  const auto res = w.controller->execute(req);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.commission_faults_seen, 0u);
}

TEST(ControllerTest, BackToBackExecutionsAreIndependent) {
  World w;
  w.load_twitter();
  w.load_weather();
  const auto r1 = w.controller->execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "a", 1, 2, 1));
  const auto r2 = w.controller->execute(baseline::cluster_bft(
      workloads::weather_average_analysis(), "b", 1, 2, 1));
  EXPECT_TRUE(r1.verified);
  EXPECT_TRUE(r2.verified);
  EXPECT_GT(r2.metrics.latency_s, 0.0);
}

TEST(ControllerTest, OptimizedPlanVerifiesIdentically) {
  World w;
  w.load_twitter();
  auto req = baseline::cluster_bft(
      "edges = LOAD 'twitter/edges' AS (user:long, follower:long);\n"
      "p = FOREACH edges GENERATE user, follower;\n"  // identity: elided
      "f1 = FILTER p BY follower IS NOT NULL;\n"
      "f2 = FILTER f1 BY user > 0 + 0;\n"             // merged + folded
      "g = GROUP f2 BY user;\n"
      "c = FOREACH g GENERATE group, COUNT(f2);\n"
      "STORE c INTO 'out/counts';\n",
      "opt", 1, 2, 1);
  req.optimize_plan = true;
  const auto res = w.controller->execute(req);
  ASSERT_TRUE(res.verified);
  auto plain = req;
  plain.optimize_plan = false;
  plain.name = "plain";
  const auto ref = w.controller->execute(plain);
  ASSERT_TRUE(ref.verified);
  EXPECT_EQ(res.outputs.at("out/counts").sorted_rows(),
            ref.outputs.at("out/counts").sorted_rows());
}

TEST(ControllerTest, MetricsScaleWithReplication) {
  World w;
  w.load_twitter();
  const auto r1 = w.controller->execute(
      baseline::pure_pig(workloads::twitter_follower_analysis(), "p1"));
  const auto r4 = w.controller->execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "p4", 1, 4, 1));
  // 4 replicas cost ~4x the CPU, but wall latency far less than 4x.
  EXPECT_GT(r4.metrics.cpu_seconds, 3.0 * r1.metrics.cpu_seconds);
  EXPECT_LT(r4.metrics.latency_s, 2.5 * r1.metrics.latency_s);
  EXPECT_GE(r4.metrics.hdfs_write, 3 * r1.metrics.hdfs_write);
}

}  // namespace
}  // namespace clusterbft::core
