#include "mapreduce/compiler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "dataflow/parser.hpp"
#include "workloads/scripts.hpp"

namespace clusterbft::mapreduce {
namespace {

using dataflow::OpKind;
using dataflow::parse_script;

JobDag compile_script(const std::string& script,
                      std::vector<VerificationPoint> vps = {},
                      std::size_t reducers = 4) {
  const auto plan = parse_script(script);
  CompileOptions opts;
  opts.default_reducers = reducers;
  opts.sid_prefix = "t";
  return compile(plan, vps, opts);
}

TEST(CompilerTest, SingleGroupJobShape) {
  const auto dag = compile_script(workloads::twitter_follower_analysis());
  ASSERT_EQ(dag.jobs.size(), 1u);
  const MRJobSpec& j = dag.jobs[0];
  EXPECT_FALSE(j.map_only());
  ASSERT_EQ(j.branches.size(), 1u);
  EXPECT_EQ(j.branches[0].input_path, "twitter/edges");
  EXPECT_EQ(j.branches[0].map_ops.size(), 1u);  // the filter
  EXPECT_EQ(j.reduce_ops.size(), 1u);           // the foreach
  EXPECT_TRUE(j.is_final_store);
  EXPECT_EQ(j.output_path, "out/follower_counts");
  EXPECT_EQ(j.num_reducers, 4u);
  EXPECT_TRUE(j.deps.empty());
}

TEST(CompilerTest, TwoHopJoinThenDistinct) {
  const auto dag = compile_script(workloads::twitter_two_hop_analysis());
  // Job 0: join (two tagged branches) + projection; job 1: distinct.
  ASSERT_EQ(dag.jobs.size(), 2u);
  const MRJobSpec& join_job = dag.jobs[0];
  ASSERT_EQ(join_job.branches.size(), 2u);
  EXPECT_EQ(join_job.branches[0].tag, 0);
  EXPECT_EQ(join_job.branches[1].tag, 1);
  EXPECT_FALSE(join_job.is_final_store);

  const MRJobSpec& distinct_job = dag.jobs[1];
  EXPECT_EQ(distinct_job.deps, std::vector<std::size_t>{0});
  EXPECT_TRUE(distinct_job.is_final_store);
  // The dependent job reads the first job's output.
  EXPECT_EQ(distinct_job.branches[0].input_path, join_job.output_path);
}

TEST(CompilerTest, AirlineMultiStoreChains) {
  const auto dag = compile_script(workloads::airline_top20_analysis());
  // The shared filtered scan materialises once; three group jobs; three
  // order+limit jobs: 7 total.
  ASSERT_EQ(dag.jobs.size(), 7u);
  EXPECT_TRUE(dag.jobs[0].map_only());  // shared filter materialisation

  std::size_t finals = 0;
  std::set<std::string> outputs;
  for (const MRJobSpec& j : dag.jobs) {
    if (j.is_final_store) {
      ++finals;
      outputs.insert(j.output_path);
      EXPECT_EQ(j.num_reducers, 1u);  // ORDER jobs are single-reducer
    }
  }
  EXPECT_EQ(finals, 3u);
  EXPECT_TRUE(outputs.count("out/top_outbound"));
  EXPECT_TRUE(outputs.count("out/top_inbound"));
  EXPECT_TRUE(outputs.count("out/top_overall"));

  // The union feeds the "overall" group job through two branches.
  bool union_job_found = false;
  for (const MRJobSpec& j : dag.jobs) {
    if (j.branches.size() == 2 && !j.map_only() &&
        j.branches[0].tag == 0 && j.branches[1].tag == 0) {
      union_job_found = true;
    }
  }
  EXPECT_TRUE(union_job_found);
}

TEST(CompilerTest, WeatherTwoGroupChain) {
  const auto dag = compile_script(workloads::weather_average_analysis());
  ASSERT_EQ(dag.jobs.size(), 2u);
  EXPECT_EQ(dag.jobs[1].deps, std::vector<std::size_t>{0});
}

TEST(CompilerTest, ReadyRespectsDependencies) {
  const auto dag = compile_script(workloads::weather_average_analysis());
  std::vector<bool> done(dag.jobs.size(), false);
  EXPECT_EQ(dag.ready(done), std::vector<std::size_t>{0});
  done[0] = true;
  EXPECT_EQ(dag.ready(done), std::vector<std::size_t>{1});
  done[1] = true;
  EXPECT_TRUE(dag.ready(done).empty());
}

TEST(CompilerTest, OrderAndLimitShareASingleReducerJob) {
  const auto dag = compile_script(
      "a = LOAD 'in' AS (x:long);\n"
      "g = GROUP a BY x;\n"
      "c = FOREACH g GENERATE group, COUNT(a) AS n;\n"
      "o = ORDER c BY n DESC;\n"
      "t = LIMIT o 5;\n"
      "STORE t INTO 'out';\n");
  ASSERT_EQ(dag.jobs.size(), 2u);
  const MRJobSpec& order_job = dag.jobs[1];
  EXPECT_EQ(order_job.num_reducers, 1u);
  ASSERT_TRUE(order_job.blocking.has_value());
  EXPECT_EQ(order_job.reduce_ops.size(), 1u);  // LIMIT rides the reducer
}

TEST(CompilerTest, MapOnlyScriptGetsPassthroughJob) {
  const auto dag = compile_script(
      "a = LOAD 'in' AS (x:long);\n"
      "f = FILTER a BY x > 0;\n"
      "STORE f INTO 'out';\n");
  ASSERT_EQ(dag.jobs.size(), 1u);
  EXPECT_TRUE(dag.jobs[0].map_only());
  EXPECT_TRUE(dag.jobs[0].is_final_store);
}

TEST(CompilerTest, LimitWithoutOrderGetsGlobalCutJob) {
  const auto dag = compile_script(
      "a = LOAD 'in' AS (x:long);\n"
      "t = LIMIT a 3;\n"
      "STORE t INTO 'out';\n");
  ASSERT_EQ(dag.jobs.size(), 1u);
  EXPECT_FALSE(dag.jobs[0].map_only());
  EXPECT_EQ(dag.jobs[0].num_reducers, 1u);
}

TEST(CompilerTest, VerificationPointsLandInTheRightJobs) {
  const auto plan = parse_script(workloads::weather_average_analysis());
  // Vertex 2 is the first GROUP (reduce side of job 0); vertex 0 is the
  // LOAD (map side of job 0).
  ASSERT_EQ(plan.node(2).kind, OpKind::kGroup);
  CompileOptions opts;
  opts.sid_prefix = "t";
  const auto dag = compile(plan, {{2, 100}, {0, 0}}, opts);
  // The two requested points land in job 0, plus the implicit boundary
  // point at the job's output vertex: a gating job must digest the exact
  // bytes it materialises, or agreement could promote corrupt output.
  ASSERT_EQ(dag.jobs[0].vps.size(), 3u);
  EXPECT_EQ(dag.jobs[0].vps[0].records_per_digest, 100u);
  EXPECT_EQ(dag.jobs[0].vps[2].vertex, dag.jobs[0].output_vertex);
  EXPECT_EQ(dag.jobs[0].vps[2].records_per_digest, 100u);
  // Job 1 carries no VP, so it stays non-gating: no implicit point added.
  EXPECT_TRUE(dag.jobs[1].vps.empty());
}

TEST(CompilerTest, StorePointNormalisesToStoredVertex) {
  const auto plan = parse_script(workloads::twitter_follower_analysis());
  const auto stores = plan.stores();
  ASSERT_EQ(stores.size(), 1u);
  CompileOptions opts;
  opts.sid_prefix = "t";
  const auto dag = compile(plan, {{stores[0], 0}}, opts);
  ASSERT_EQ(dag.jobs[0].vps.size(), 1u);
  // Normalised to the FOREACH feeding the store, which is reduce-side.
  EXPECT_EQ(dag.jobs[0].vps[0].vertex, dag.jobs[0].output_vertex);
}

TEST(CompilerTest, SidsAreUniqueAndPrefixed) {
  const auto dag = compile_script(workloads::airline_top20_analysis());
  std::set<std::string> sids;
  for (const MRJobSpec& j : dag.jobs) {
    EXPECT_EQ(j.sid.rfind("t:", 0), 0u);
    EXPECT_TRUE(sids.insert(j.sid).second);
  }
}

TEST(CompilerTest, IsMapSideClassification) {
  const auto dag = compile_script(workloads::twitter_follower_analysis());
  const MRJobSpec& j = dag.jobs[0];
  EXPECT_TRUE(j.is_map_side(j.branches[0].source_vertex));
  EXPECT_TRUE(j.is_map_side(j.branches[0].map_ops[0]));
  EXPECT_FALSE(j.is_map_side(*j.blocking));
}

}  // namespace
}  // namespace clusterbft::mapreduce
