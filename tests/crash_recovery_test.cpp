// Crash-recovery determinism: a controller that crashes after the k-th
// journal record and is recovered by a fresh instance over the same
// journal must finish the script with bit-identical final outputs,
// identical ScriptMetrics, and an identical audit history to the
// uninterrupted run — for EVERY k. The sweep covers crashes inside
// begin_script, mid-dispatch, between digest arrivals, around
// verification decisions and rollback, and right before the finish
// record.
//
// The scenario is a two-job weather chain with one commission-faulty
// node, so the recovered run must also reconstruct verifier evidence,
// fault attribution and suspicion bookkeeping — not just the happy path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/presets.hpp"
#include "cluster/cloud.hpp"
#include "cluster/fault_plan.hpp"
#include "cluster/tracker.hpp"
#include "core/controller.hpp"
#include "core/journal.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"
#include "protocol/multicloud.hpp"
#include "protocol/seam.hpp"
#include "workloads/scripts.hpp"
#include "workloads/weather.hpp"

namespace clusterbft::core {
namespace {

using cluster::AdversaryPolicy;
using cluster::TrackerConfig;

constexpr const char* kInputPath = "weather/gsod";
constexpr const char* kOutputPath = "out/weather_hist";

/// One self-contained world: simulator, DFS with the weather input,
/// tracker with one commission-faulty node, loopback seam. Every run of
/// the sweep gets a fresh, identically-seeded world so the only varying
/// input is the crash point.
struct World {
  cluster::EventSim sim;
  mapreduce::Dfs dfs{16384};
  std::unique_ptr<cluster::ExecutionTracker> tracker;
  std::unique_ptr<protocol::LoopbackSeam> seam;

  World() {
    workloads::WeatherConfig w;
    w.num_stations = 40;
    w.readings_per_station = 4;
    dfs.write(kInputPath, workloads::generate_weather(w));
    TrackerConfig cfg;
    cfg.num_nodes = 8;
    cfg.seed = 7;
    cfg.policies[0] = AdversaryPolicy{.commission_prob = 1.0};
    tracker = std::make_unique<cluster::ExecutionTracker>(sim, dfs, cfg);
    seam = std::make_unique<protocol::LoopbackSeam>(*tracker);
  }
};

ClientRequest request() {
  return baseline::cluster_bft(workloads::weather_average_analysis(),
                               "recover", 1, 2, 1);
}

struct Outcome {
  ScriptResult result;
  std::string audit;
};

void expect_equal(const Outcome& got, const Outcome& want) {
  ASSERT_EQ(got.result.verified, want.result.verified);
  EXPECT_EQ(got.result.degraded, want.result.degraded);
  EXPECT_EQ(got.result.failure, want.result.failure);
  ASSERT_EQ(got.result.outputs.size(), want.result.outputs.size());
  for (const auto& [path, rel] : want.result.outputs) {
    ASSERT_TRUE(got.result.outputs.count(path)) << path;
    EXPECT_EQ(got.result.outputs.at(path).sorted_rows(), rel.sorted_rows())
        << "output diverged after recovery: " << path;
  }
  const ScriptMetrics& gm = got.result.metrics;
  const ScriptMetrics& wm = want.result.metrics;
  EXPECT_EQ(gm.latency_s, wm.latency_s);
  EXPECT_EQ(gm.cpu_seconds, wm.cpu_seconds);
  EXPECT_EQ(gm.file_read, wm.file_read);
  EXPECT_EQ(gm.file_write, wm.file_write);
  EXPECT_EQ(gm.hdfs_write, wm.hdfs_write);
  EXPECT_EQ(gm.digested, wm.digested);
  EXPECT_EQ(gm.runs, wm.runs);
  EXPECT_EQ(gm.waves, wm.waves);
  EXPECT_EQ(gm.rollbacks, wm.rollbacks);
  EXPECT_EQ(gm.digest_reports, wm.digest_reports);
  EXPECT_EQ(gm.cache_hits, wm.cache_hits);
  EXPECT_EQ(gm.checkpoints, wm.checkpoints);
  EXPECT_EQ(gm.checkpoint_bytes, wm.checkpoint_bytes);
  EXPECT_EQ(gm.escalations, wm.escalations);
  EXPECT_EQ(gm.cloud_failovers, wm.cloud_failovers);
  EXPECT_EQ(got.result.commission_faults_seen,
            want.result.commission_faults_seen);
  EXPECT_EQ(got.result.omission_faults_seen,
            want.result.omission_faults_seen);
  EXPECT_EQ(got.result.suspects, want.result.suspects);
  EXPECT_EQ(got.audit, want.audit) << "audit history diverged";
}

TEST(CrashRecoveryTest, JournalingItselfIsBehaviourTransparent) {
  // Same world, with and without a journal: identical results.
  World plain;
  ClusterBft a(plain.sim, plain.dfs, plain.seam->transport,
               plain.seam->programs);
  const auto ra = a.execute(request());

  World journaled;
  Journal j;
  ClusterBft b(journaled.sim, journaled.dfs, journaled.seam->transport,
               journaled.seam->programs, &j);
  const auto rb = b.execute(request());

  expect_equal({rb, b.audit_log().to_string()},
               {ra, a.audit_log().to_string()});
  ASSERT_TRUE(ra.verified);
  EXPECT_GT(j.size(), 0u);
  EXPECT_FALSE(j.recovery_pending());  // kScriptFinish closes the window
}

TEST(CrashRecoveryTest, RecoveryIsBitIdenticalAtEveryCrashPoint) {
  // ---- uninterrupted reference ----
  World ref_world;
  Journal ref_journal;
  ClusterBft ref(ref_world.sim, ref_world.dfs, ref_world.seam->transport,
                 ref_world.seam->programs, &ref_journal);
  const ClientRequest req = request();
  Outcome want{ref.execute(req), ref.audit_log().to_string()};
  ASSERT_TRUE(want.result.verified);
  ASSERT_GT(want.result.commission_faults_seen, 0u)
      << "the scenario must exercise fault attribution";

  // Golden output from the reference interpreter.
  const auto plan = dataflow::parse_script(req.script);
  const auto golden = dataflow::interpret(
      plan, {{kInputPath, ref_world.dfs.read(kInputPath)}});
  ASSERT_EQ(want.result.outputs.at(kOutputPath).sorted_rows(),
            golden.at(kOutputPath).sorted_rows());

  const std::size_t records = ref_journal.size();
  ASSERT_GT(records, 10u) << "journal suspiciously small";

  // ---- crash at every record index, recover, compare ----
  for (std::size_t k = 0; k < records; ++k) {
    SCOPED_TRACE("crash at journal record " + std::to_string(k));
    World w;
    Journal journal;
    journal.set_crash_at(k);
    // The crashed life. It must be kept alive while the recovered life
    // runs: the program registry and tracker hold pointers into its
    // compiled plan for runs dispatched before the crash.
    ClusterBft crashed(w.sim, w.dfs, w.seam->transport, w.seam->programs,
                       &journal);
    ASSERT_THROW(crashed.execute(req), ControllerCrashed);
    ASSERT_TRUE(journal.crashed());
    ASSERT_EQ(journal.size(), k);  // the k-th record was never written

    ClusterBft recovered(w.sim, w.dfs, w.seam->transport, w.seam->programs,
                         &journal);
    const ScriptResult res = recovered.recover(req);
    expect_equal({res, recovered.audit_log().to_string()}, want);
    EXPECT_FALSE(journal.recovery_pending());
  }
}

TEST(CrashRecoveryTest, RecoveryWithTwoInFlightSessionsIsBitIdentical) {
  // Two weather sessions in flight at once (interleaved waves, shared
  // verifier and suspicion bookkeeping), crashed at EVERY journal record
  // and recovered as a set: both results and the full audit history must
  // match the uninterrupted concurrent run bit for bit.
  const ClientRequest req_a = baseline::cluster_bft(
      workloads::weather_average_analysis(), "multi-a", 1, 2, 1);
  const ClientRequest req_b = baseline::cluster_bft(
      workloads::weather_average_analysis(), "multi-b", 1, 2, 1);
  const std::vector<ClientRequest> reqs{req_a, req_b};

  // ---- uninterrupted concurrent reference ----
  World ref_world;
  Journal ref_journal;
  ClusterBft ref(ref_world.sim, ref_world.dfs, ref_world.seam->transport,
                 ref_world.seam->programs, &ref_journal);
  std::vector<Outcome> want;
  {
    for (const ClientRequest& r : reqs) (void)ref.begin_session(r);
    ref.drive_all();
    for (std::size_t s = 1; s <= reqs.size(); ++s) {
      want.push_back({ref.collect_session(s), {}});
      ASSERT_TRUE(want.back().result.verified) << s;
    }
  }
  const std::string want_audit = ref.audit_log().to_string();
  ASSERT_FALSE(ref_journal.recovery_pending());

  const std::size_t records = ref_journal.size();
  ASSERT_GT(records, 20u) << "journal suspiciously small";

  for (std::size_t k = 0; k < records; ++k) {
    SCOPED_TRACE("crash at journal record " + std::to_string(k));
    World w;
    Journal journal;
    journal.set_crash_at(k);
    ClusterBft crashed(w.sim, w.dfs, w.seam->transport, w.seam->programs,
                       &journal);
    try {
      for (const ClientRequest& r : reqs) (void)crashed.begin_session(r);
      crashed.drive_all();
      for (std::size_t s = 1; s <= reqs.size(); ++s) {
        (void)crashed.collect_session(s);
      }
      FAIL() << "crash point never fired";
    } catch (const ControllerCrashed&) {
    }
    ASSERT_TRUE(journal.crashed());
    ASSERT_EQ(journal.size(), k);

    ClusterBft recovered(w.sim, w.dfs, w.seam->transport, w.seam->programs,
                         &journal);
    const std::vector<ScriptResult> got = recovered.recover_all(reqs);
    ASSERT_EQ(got.size(), reqs.size());
    const std::string got_audit = recovered.audit_log().to_string();
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      SCOPED_TRACE(reqs[i].name);
      expect_equal({got[i], got_audit}, {want[i].result, want_audit});
    }
    EXPECT_FALSE(journal.recovery_pending());
  }
}

TEST(CrashRecoveryTest, AdaptiveCheckpointRecoveryIsBitIdentical) {
  // Adaptive knobs on: f+1-first chains (the commission fault forces a
  // journaled kEscalation), and the cost model checkpoints the mid-chain
  // verified relation (journaled kCheckpoint before the DFS write). The
  // crash sweep therefore straddles every checkpoint/escalation record —
  // including a crash between the kCheckpoint append and the verified
  // decision that follows, and crashes mid-rollback — and recovery must
  // re-derive adoption and escalation bit-identically.
  ClientRequest req = request();
  req.assurance = Assurance::kAdaptive;
  req.adaptive_checkpoints = true;

  World ref_world;
  Journal ref_journal;
  ClusterBft ref(ref_world.sim, ref_world.dfs, ref_world.seam->transport,
                 ref_world.seam->programs, &ref_journal);
  Outcome want{ref.execute(req), ref.audit_log().to_string()};
  ASSERT_TRUE(want.result.verified);
  ASSERT_GT(want.result.commission_faults_seen, 0u);
  ASSERT_GT(want.result.metrics.checkpoints, 0u)
      << "the scenario must exercise checkpoint materialisation";
  ASSERT_GT(want.result.metrics.escalations, 0u)
      << "the scenario must exercise degree escalation";

  std::size_t ckpt_records = 0;
  std::size_t esc_records = 0;
  for (std::size_t i = 0; i < ref_journal.size(); ++i) {
    if (ref_journal.at(i).kind == RecordKind::kCheckpoint) ++ckpt_records;
    if (ref_journal.at(i).kind == RecordKind::kEscalation) ++esc_records;
  }
  ASSERT_GT(ckpt_records, 0u);
  ASSERT_GT(esc_records, 0u);

  const auto plan = dataflow::parse_script(req.script);
  const auto golden = dataflow::interpret(
      plan, {{kInputPath, ref_world.dfs.read(kInputPath)}});
  ASSERT_EQ(want.result.outputs.at(kOutputPath).sorted_rows(),
            golden.at(kOutputPath).sorted_rows());

  const std::size_t records = ref_journal.size();
  for (std::size_t k = 0; k < records; ++k) {
    SCOPED_TRACE("crash at journal record " + std::to_string(k));
    World w;
    Journal journal;
    journal.set_crash_at(k);
    ClusterBft crashed(w.sim, w.dfs, w.seam->transport, w.seam->programs,
                       &journal);
    ASSERT_THROW(crashed.execute(req), ControllerCrashed);
    ASSERT_TRUE(journal.crashed());
    ASSERT_EQ(journal.size(), k);

    ClusterBft recovered(w.sim, w.dfs, w.seam->transport, w.seam->programs,
                         &journal);
    const ScriptResult res = recovered.recover(req);
    expect_equal({res, recovered.audit_log().to_string()}, want);
    EXPECT_FALSE(journal.recovery_pending());
  }
}

TEST(CrashRecoveryTest, CloudFailoverRecoveryIsBitIdentical) {
  // Multi-cloud world: two clouds under kSpread with a permanent
  // whole-cloud outage killing cloud 1 mid-chain, so the reference run
  // journals a kCloudFailover decision. The crash sweep straddles every
  // record — in particular the crash that lands right ON the
  // kCloudFailover append (the record is lost, replay re-derives the
  // same failover from the journaled stimuli) and the crashes between
  // the failover and its urgent re-dispatches. Outputs, metrics and the
  // audit transcript must match the uninterrupted run bit for bit.
  struct CloudWorld {
    cluster::EventSim sim;
    mapreduce::Dfs dfs{16384};
    std::unique_ptr<cluster::Cloud> a;
    std::unique_ptr<cluster::Cloud> b;
    std::unique_ptr<protocol::MultiCloudSeam> seam;

    CloudWorld() {
      workloads::WeatherConfig w;
      w.num_stations = 40;
      w.readings_per_station = 4;
      dfs.write(kInputPath, workloads::generate_weather(w));
      cluster::CloudProfile alpha;
      alpha.name = "alpha";
      alpha.num_nodes = 8;
      alpha.seed = 7;
      cluster::CloudProfile beta = alpha;
      beta.name = "beta";
      beta.seed = 8;
      a = std::make_unique<cluster::Cloud>(0, sim, dfs, alpha);
      b = std::make_unique<cluster::Cloud>(1, sim, dfs, beta);
      seam = std::make_unique<protocol::MultiCloudSeam>(
          std::vector<cluster::Cloud*>{a.get(), b.get()});
      cluster::FaultPlan faults;
      faults.cloud_outages.push_back({0.05, 0 /* never heals */, 1});
      seam->arm(sim, faults);
    }
  };

  ClientRequest req = request();
  req.placement = Placement::kSpread;
  req.verifier_timeout_s = 5.0;
  req.max_rerun_waves = 4;

  // ---- uninterrupted reference ----
  CloudWorld ref_world;
  Journal ref_journal;
  ClusterBft ref(ref_world.sim, ref_world.dfs, ref_world.seam->transport,
                 ref_world.seam->programs, &ref_journal);
  Outcome want{ref.execute(req), ref.audit_log().to_string()};
  ASSERT_TRUE(want.result.verified);
  ASSERT_GT(want.result.metrics.cloud_failovers, 0u)
      << "the scenario must exercise cross-cloud failover";

  std::size_t failover_records = 0;
  for (std::size_t i = 0; i < ref_journal.size(); ++i) {
    if (ref_journal.at(i).kind == RecordKind::kCloudFailover) {
      ++failover_records;
    }
  }
  ASSERT_GT(failover_records, 0u);

  const auto plan = dataflow::parse_script(req.script);
  const auto golden = dataflow::interpret(
      plan, {{kInputPath, ref_world.dfs.read(kInputPath)}});
  ASSERT_EQ(want.result.outputs.at(kOutputPath).sorted_rows(),
            golden.at(kOutputPath).sorted_rows());

  // ---- crash at every record index, recover, compare ----
  const std::size_t records = ref_journal.size();
  ASSERT_GT(records, 10u) << "journal suspiciously small";
  for (std::size_t k = 0; k < records; ++k) {
    SCOPED_TRACE("crash at journal record " + std::to_string(k));
    CloudWorld w;
    Journal journal;
    journal.set_crash_at(k);
    ClusterBft crashed(w.sim, w.dfs, w.seam->transport, w.seam->programs,
                       &journal);
    ASSERT_THROW(crashed.execute(req), ControllerCrashed);
    ASSERT_TRUE(journal.crashed());
    ASSERT_EQ(journal.size(), k);

    ClusterBft recovered(w.sim, w.dfs, w.seam->transport, w.seam->programs,
                         &journal);
    const ScriptResult res = recovered.recover(req);
    expect_equal({res, recovered.audit_log().to_string()}, want);
    EXPECT_FALSE(journal.recovery_pending());
  }
}

TEST(CrashRecoveryTest, CacheHitRecoveryIsBitIdentical) {
  // The same script executed twice with the result cache on: the second
  // execution adopts cached verified results (cache_hits > 0, journaled
  // as kCacheHit). Crash the pair at every record; recovery must replay
  // the adoption — same hits, same outputs, same audit — even when the
  // crash lands between the insert (first script) and the hit (second).
  const ClientRequest base = request();
  ClientRequest req = base;
  req.use_result_cache = true;

  World ref_world;
  Journal ref_journal;
  ClusterBft ref(ref_world.sim, ref_world.dfs, ref_world.seam->transport,
                 ref_world.seam->programs, &ref_journal);
  // Audit comparison is per-session canonical transcript: recovery
  // collects sessions at the end, so the raw insertion order of the
  // script-completed lines differs from the serial reference even though
  // every event (and its timestamp) is identical.
  Outcome want_cold{ref.execute(req), {}};
  Outcome want_hit{ref.execute(req), {}};
  want_cold.audit = ref.audit_log().transcript("recover#1");
  want_hit.audit = ref.audit_log().transcript("recover#2");
  ASSERT_TRUE(want_cold.result.verified);
  ASSERT_TRUE(want_hit.result.verified);
  ASSERT_EQ(want_cold.result.metrics.cache_hits, 0u);
  ASSERT_GT(want_hit.result.metrics.cache_hits, 0u)
      << "the scenario must exercise cache adoption";

  const std::size_t records = ref_journal.size();
  for (std::size_t k = 0; k < records; ++k) {
    SCOPED_TRACE("crash at journal record " + std::to_string(k));
    World w;
    Journal journal;
    journal.set_crash_at(k);
    ClusterBft crashed(w.sim, w.dfs, w.seam->transport, w.seam->programs,
                       &journal);
    try {
      (void)crashed.execute(req);
      (void)crashed.execute(req);
      FAIL() << "crash point never fired";
    } catch (const ControllerCrashed&) {
    }
    ASSERT_TRUE(journal.crashed());

    // Only sessions whose kScriptStart reached the journal were in flight
    // at the crash; those are recovered. The rest were never submitted —
    // the client re-executes them on the recovered controller, whose
    // cache was rebuilt by replay (so the re-executed second script still
    // hits). A non-empty journal is always replayed (via recover_all with
    // one request) even when no script durably started: it can hold
    // membership announcements the wire already delivered.
    std::size_t started = 0;
    for (std::size_t i = 0; i < journal.size(); ++i) {
      if (journal.at(i).kind == RecordKind::kScriptStart) ++started;
    }
    ClusterBft recovered(w.sim, w.dfs, w.seam->transport, w.seam->programs,
                         &journal);
    std::vector<ScriptResult> got;
    if (journal.size() > 0) {
      got = recovered.recover_all(std::vector<ClientRequest>(
          std::max<std::size_t>(started, 1), req));
    }
    while (got.size() < 2) got.push_back(recovered.execute(req));
    expect_equal({got[0], recovered.audit_log().transcript("recover#1")},
                 want_cold);
    expect_equal({got[1], recovered.audit_log().transcript("recover#2")},
                 want_hit);
    EXPECT_FALSE(journal.recovery_pending());
  }
}

TEST(CrashRecoveryTest, JournalSurvivesFileRoundTripIncludingTornTail) {
  World w;
  Journal journal;
  const std::string path = ::testing::TempDir() + "cbft_journal_test.bin";
  ASSERT_TRUE(journal.attach_file(path));
  ClusterBft c(w.sim, w.dfs, w.seam->transport, w.seam->programs, &journal);
  const auto res = c.execute(request());
  ASSERT_TRUE(res.verified);

  Journal loaded;
  ASSERT_TRUE(Journal::load_file(path, loaded));
  ASSERT_EQ(loaded.size(), journal.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.at(i).kind, journal.at(i).kind);
    EXPECT_EQ(loaded.at(i).time, journal.at(i).time);
    EXPECT_EQ(loaded.at(i).payload, journal.at(i).payload);
  }

  // Tear the tail mid-record: load keeps the intact prefix and reports
  // the torn write.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_GT(size, 8);
  ASSERT_EQ(ftruncate(fileno(f), size - 5), 0);
  std::fclose(f);
  Journal torn;
  EXPECT_FALSE(Journal::load_file(path, torn));
  EXPECT_EQ(torn.size(), journal.size() - 1);
  std::remove(path.c_str());
}

TEST(CrashRecoveryTest, PoolExhaustionFailsHonestlyInFailMode) {
  // One commission-faulty node in a 3-node cluster at r=3: the first
  // script convicts it, the threshold evicts it, and the second script
  // cannot place 3 replica chains on 2 healthy nodes.
  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  workloads::WeatherConfig wc;
  wc.num_stations = 40;
  wc.readings_per_station = 4;
  dfs.write(kInputPath, workloads::generate_weather(wc));
  TrackerConfig cfg;
  cfg.num_nodes = 3;
  cfg.seed = 7;
  cfg.policies[1] = AdversaryPolicy{.commission_prob = 1.0};
  cluster::ExecutionTracker tracker(sim, dfs, cfg);
  protocol::LoopbackSeam seam(tracker);
  ClusterBft controller(sim, dfs, seam.transport, seam.programs);

  ClientRequest req = baseline::cluster_bft(
      workloads::weather_average_analysis(), "exhaust", 1, 3, 1);
  const auto first = controller.execute(req);
  ASSERT_TRUE(first.verified);
  // Suspicion is faults / jobs executed, so one conviction over several
  // runs is fractional; any nonzero suspicion marks the faulty node.
  const auto evicted = controller.apply_suspicion_threshold(0.0);
  ASSERT_FALSE(evicted.empty()) << "the faulty node must have been evicted";

  req.degraded_mode = DegradedMode::kFail;
  const auto second = controller.execute(req);
  EXPECT_FALSE(second.verified);
  EXPECT_EQ(second.failure, FailureReason::kPoolExhausted);
  EXPECT_TRUE(second.outputs.empty())
      << "a failed script must not promote outputs";
  EXPECT_NE(controller.audit_log().to_string().find("pool-exhausted"),
            std::string::npos);
}

TEST(CrashRecoveryTest, PoolExhaustionDegradesAndForcesVerification) {
  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  workloads::WeatherConfig wc;
  wc.num_stations = 40;
  wc.readings_per_station = 4;
  dfs.write(kInputPath, workloads::generate_weather(wc));
  TrackerConfig cfg;
  cfg.num_nodes = 3;
  cfg.seed = 7;
  cfg.policies[1] = AdversaryPolicy{.commission_prob = 1.0};
  cluster::ExecutionTracker tracker(sim, dfs, cfg);
  protocol::LoopbackSeam seam(tracker);
  ClusterBft controller(sim, dfs, seam.transport, seam.programs);

  ClientRequest req = baseline::cluster_bft(
      workloads::weather_average_analysis(), "degrade", 1, 3, 1);
  const auto first = controller.execute(req);
  ASSERT_TRUE(first.verified);
  ASSERT_FALSE(controller.apply_suspicion_threshold(0.0).empty());

  req.degraded_mode = DegradedMode::kReadmit;  // the default, made explicit
  const auto second = controller.execute(req);
  EXPECT_TRUE(second.degraded) << "the run must be marked degraded";
  EXPECT_NE(controller.audit_log().to_string().find("degraded"),
            std::string::npos);
  if (second.verified) {
    // Degraded success is only ever a VERIFIED success, and the output
    // must still match the reference interpreter exactly.
    const auto plan = dataflow::parse_script(req.script);
    const auto golden =
        dataflow::interpret(plan, {{kInputPath, dfs.read(kInputPath)}});
    EXPECT_EQ(second.outputs.at(kOutputPath).sorted_rows(),
              golden.at(kOutputPath).sorted_rows());
  } else {
    // With the faulty node back in the pool agreement can stay out of
    // reach; the failure must be structured, never a promoted guess.
    EXPECT_NE(second.failure, FailureReason::kNone);
    EXPECT_TRUE(second.outputs.empty());
  }
}

}  // namespace
}  // namespace clusterbft::core
