// Chaos-injection sweep: across seeds and fault mixes — network storms
// (drop + duplicate + reorder + corrupt), digest-path outages, worker
// crashes mid-run, and controller crash/recovery under chaos — two
// safety invariants must hold without a single flake:
//
//  1. No unverified output is ever promoted: a script that does not
//     verify reports a structured FailureReason and an empty output map.
//  2. A verified script's outputs are bit-for-bit identical to the
//     all-honest reference interpreter's.
//
// Liveness under a storm is explicitly NOT asserted (a fault mix may
// legitimately exhaust the rerun budget or stall); only honesty is.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baseline/presets.hpp"
#include "cluster/cloud.hpp"
#include "cluster/fault_plan.hpp"
#include "cluster/tracker.hpp"
#include "core/controller.hpp"
#include "core/journal.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"
#include "protocol/multicloud.hpp"
#include "protocol/seam.hpp"
#include "workloads/scripts.hpp"
#include "workloads/weather.hpp"

namespace clusterbft::core {
namespace {

using cluster::AdversaryPolicy;
using cluster::FaultPlan;
using cluster::TrackerConfig;

constexpr const char* kInputPath = "weather/gsod";
constexpr const char* kOutputPath = "out/weather_hist";

enum class Mix {
  kNetworkStorm,        // drop + duplicate + reorder + corrupt, both ways
  kDigestOutage,        // storm + extra digest loss, delay and a blackout
  kWorkerCrashes,       // two workers die mid-run under a mild storm
  kControllerCrash,     // journal crash point + recovery under a mild storm
  kDynamicReplication,  // adaptive f+1-first degree + checkpoints under a
                        // storm with a node convicted mid-chain
  kCloudOutage,         // two clouds under kSpread, one (seed-chosen,
                        // sometimes the one with a correlated commission
                        // fault) killed mid-chain — failover or honest
                        // failure, never wrong bytes
};

const char* to_string(Mix mix) {
  switch (mix) {
    case Mix::kNetworkStorm: return "NetworkStorm";
    case Mix::kDigestOutage: return "DigestOutage";
    case Mix::kWorkerCrashes: return "WorkerCrashes";
    case Mix::kControllerCrash: return "ControllerCrash";
    case Mix::kDynamicReplication: return "DynamicReplication";
    case Mix::kCloudOutage: return "CloudOutage";
  }
  return "?";
}

struct SweepParam {
  Mix mix;
  std::uint64_t seed;
};

protocol::ChaosConfig chaos_for(const SweepParam& p) {
  protocol::ChaosConfig cfg;
  cfg.seed = p.seed;
  switch (p.mix) {
    case Mix::kNetworkStorm:
      cfg.link.drop_prob = 0.08;
      cfg.link.dup_prob = 0.10;
      cfg.reorder_prob = 0.15;
      cfg.corrupt_prob = 0.05;
      break;
    case Mix::kDigestOutage:
      cfg.link.drop_prob = 0.05;
      cfg.link.dup_prob = 0.05;
      cfg.reorder_prob = 0.10;
      cfg.corrupt_prob = 0.03;
      cfg.digest_drop_prob = 0.25;
      cfg.digest_delay_s = 0.4;
      cfg.digest_blackout_until_s = 0.2;
      break;
    case Mix::kWorkerCrashes:
    case Mix::kControllerCrash:
    case Mix::kDynamicReplication:
      cfg.link.drop_prob = 0.03;
      cfg.link.dup_prob = 0.05;
      cfg.reorder_prob = 0.05;
      cfg.corrupt_prob = 0.02;
      break;
    case Mix::kCloudOutage:
      // The fault here IS the whole-cloud partition (armed through the
      // multi-cloud seam); no chaos link is layered on top.
      break;
  }
  return cfg;
}

// The two safety invariants every sweep point must satisfy.
void expect_safety(const ScriptResult& res,
                   const std::map<std::string, dataflow::Relation>& golden) {
  if (res.verified) {
    // Invariant 2: verified == correct, bit for bit.
    ASSERT_TRUE(res.outputs.count(kOutputPath));
    EXPECT_EQ(res.outputs.at(kOutputPath).sorted_rows(),
              golden.at(kOutputPath).sorted_rows())
        << "VERIFIED OUTPUT IS WRONG (integrity violation)";
  } else {
    // Invariant 1: failure is structured and promotes nothing.
    EXPECT_NE(res.failure, FailureReason::kNone);
    EXPECT_TRUE(res.outputs.empty())
        << "an unverified script promoted outputs";
  }
}

class ChaosSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ChaosSweep, SafetyInvariantsHoldUnderFaultStorm) {
  const SweepParam p = GetParam();

  workloads::WeatherConfig wc;
  wc.num_stations = 30;
  wc.readings_per_station = 4;
  const auto readings = workloads::generate_weather(wc);

  // All-honest reference output.
  const std::string script = workloads::weather_average_analysis();
  const auto plan = dataflow::parse_script(script);
  const auto golden = dataflow::interpret(plan, {{kInputPath, readings}});

  if (p.mix == Mix::kCloudOutage) {
    // Two clouds under kSpread, one chain per cloud. Cloud 1 carries a
    // correlated commission fault (the provider-level fault class clouds
    // exist to tolerate); the seed picks which cloud dies mid-chain —
    // sometimes the faulty one (failover into the honest cloud),
    // sometimes the honest one (reruns confined to the faulty cloud,
    // whose deviations deterministically disagree and cannot verify
    // wrong bytes).
    cluster::EventSim sim;
    mapreduce::Dfs dfs(16384);
    dfs.write(kInputPath, readings);
    cluster::CloudProfile honest;
    honest.name = "honest";
    honest.num_nodes = 10;
    honest.seed = p.seed;
    cluster::CloudProfile shady = honest;
    shady.name = "shady";
    shady.seed = p.seed + 100;
    shady.commission_prob = 0.3;
    cluster::Cloud a(0, sim, dfs, honest);
    cluster::Cloud b(1, sim, dfs, shady);
    protocol::MultiCloudSeam seam({&a, &b});
    ClusterBft controller(sim, dfs, seam.transport, seam.programs);

    FaultPlan faults;
    faults.cloud_outages.push_back(
        {0.05, 0 /* never heals */, p.seed % 2});
    seam.arm(sim, faults);

    ClientRequest req = baseline::cluster_bft(script, "cloud-chaos", 1, 2, 1);
    req.placement = Placement::kSpread;
    req.verifier_timeout_s = 5.0;
    req.max_rerun_waves = 4;
    const ScriptResult res = controller.execute(req);

    expect_safety(res, golden);
    if (res.verified) {
      // One of the two spread chains died with its cloud before any of
      // its digests landed, so completing the workload required at least
      // one journaled cross-cloud failover.
      EXPECT_GE(res.metrics.cloud_failovers, 1u);
    }
    return;
  }

  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  dfs.write(kInputPath, readings);
  TrackerConfig cfg;
  cfg.num_nodes = 10;
  cfg.seed = p.seed;
  // One commission-faulty node keeps "no unverified promotion" honest:
  // there is always a wrong answer on offer.
  cfg.policies[1] = AdversaryPolicy{.commission_prob = 0.6};
  cluster::ExecutionTracker tracker(sim, dfs, cfg);
  protocol::ChaosSeam seam(tracker, chaos_for(p));

  ClientRequest req =
      baseline::cluster_bft(script, "chaos", 1, 2, 1);
  // Chaos runs must terminate even when the storm eats every replica:
  // a tight verifier timeout and rerun budget turn "stuck" into an
  // honest structured failure instead of a 300-simulated-second wait.
  req.verifier_timeout_s = 5.0;
  req.max_rerun_waves = 4;
  if (p.mix == Mix::kDynamicReplication) {
    // f+1-first chains with checkpointed boundaries: a mid-chain
    // conviction (the commission node deviates under the storm) forces
    // escalated, scoped re-execution — which must never promote the
    // deviant bytes it restarted from.
    req.assurance = Assurance::kAdaptive;
    req.adaptive_checkpoints = true;
  }

  // The fault plan is armed only after the warm-up drain below so the
  // worker deaths land mid-script, not before it starts.
  FaultPlan faults;
  if (p.mix == Mix::kWorkerCrashes) {
    faults.worker_crashes.push_back({0.05, static_cast<cluster::NodeId>(
                                               1 + p.seed % 5)});
    faults.worker_crashes.push_back({0.25, static_cast<cluster::NodeId>(
                                               6 + p.seed % 4)});
  }

  ScriptResult res;
  if (p.mix == Mix::kControllerCrash) {
    Journal journal;
    // Crash points sweep with the seed across the journal's life; if the
    // script finishes first, the run simply completes uninterrupted
    // (still a valid sweep point).
    journal.set_crash_at(5 + (p.seed * 13) % 120);
    ClusterBft crashed(sim, dfs, seam.transport, seam.programs, &journal);
    // Drain the initial NodeAnnounce (it travels the chaos link too) so
    // the membership mirror is populated — and journaled — before submit.
    sim.run();
    bool did_crash = false;
    try {
      res = crashed.execute(req);
    } catch (const ControllerCrashed&) {
      did_crash = true;
    }
    if (did_crash) {
      ClusterBft recovered(sim, dfs, seam.transport, seam.programs,
                           &journal);
      res = recovered.recover(req);
    }
  } else {
    ClusterBft controller(sim, dfs, seam.transport, seam.programs);
    sim.run();  // drain the initial NodeAnnounce over the chaos link
    faults.arm(sim, tracker);
    res = controller.execute(req);
  }

  expect_safety(res, golden);
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  for (const Mix mix :
       {Mix::kNetworkStorm, Mix::kDigestOutage, Mix::kWorkerCrashes,
        Mix::kControllerCrash, Mix::kDynamicReplication,
        Mix::kCloudOutage}) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      out.push_back({mix, seed});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Storms, ChaosSweep, ::testing::ValuesIn(sweep_params()),
    [](const ::testing::TestParamInfo<SweepParam>& ti) {
      return std::string(to_string(ti.param.mix)) + "_s" +
             std::to_string(ti.param.seed);
    });

TEST(ChaosSweepTest, ZeroChaosConfigIsBitCompatibleWithLoopback) {
  // A ChaosSeam with every fault probability at zero (and a zero-latency
  // link) must be observationally identical to the loopback seam.
  workloads::WeatherConfig wc;
  wc.num_stations = 30;
  wc.readings_per_station = 4;
  const auto readings = workloads::generate_weather(wc);
  const std::string script = workloads::weather_average_analysis();
  const ClientRequest req = baseline::cluster_bft(script, "zero", 1, 2, 1);

  ScriptResult loopback_res;
  std::string loopback_audit;
  {
    cluster::EventSim sim;
    mapreduce::Dfs dfs(16384);
    dfs.write(kInputPath, readings);
    TrackerConfig cfg;
    cfg.num_nodes = 10;
    cfg.seed = 3;
    cluster::ExecutionTracker tracker(sim, dfs, cfg);
    protocol::LoopbackSeam seam(tracker);
    ClusterBft controller(sim, dfs, seam.transport, seam.programs);
    loopback_res = controller.execute(req);
    loopback_audit = controller.audit_log().to_string();
  }

  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  dfs.write(kInputPath, readings);
  TrackerConfig cfg;
  cfg.num_nodes = 10;
  cfg.seed = 3;
  cluster::ExecutionTracker tracker(sim, dfs, cfg);
  protocol::ChaosConfig zero;
  zero.link.base_delay_s = 0;
  zero.link.jitter_s = 0;
  protocol::ChaosSeam seam(tracker, zero);
  ClusterBft controller(sim, dfs, seam.transport, seam.programs);
  sim.run();  // drain the initial NodeAnnounce over the (zero-fault) link
  const auto res = controller.execute(req);

  ASSERT_TRUE(res.verified);
  ASSERT_TRUE(loopback_res.verified);
  EXPECT_EQ(res.outputs.at(kOutputPath).sorted_rows(),
            loopback_res.outputs.at(kOutputPath).sorted_rows());
  EXPECT_EQ(res.metrics.runs, loopback_res.metrics.runs);
  EXPECT_EQ(res.metrics.waves, loopback_res.metrics.waves);
}

// ---- concurrent sessions under chaos -------------------------------
//
// Two sessions in flight through one controller while the storm rages,
// with a journal crash point that can land anywhere in the interleaved
// life. After recover_all the same two safety invariants must hold for
// EACH session independently: verified implies bit-identical to the
// honest reference, unverified implies a structured failure and no
// promoted output.
class ConcurrentChaosSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ConcurrentChaosSweep, SafetyHoldsPerSessionUnderStormAndCrash) {
  const std::uint64_t seed = GetParam();
  workloads::WeatherConfig wc;
  wc.num_stations = 30;
  wc.readings_per_station = 4;
  const auto readings = workloads::generate_weather(wc);
  const std::string script = workloads::weather_average_analysis();
  const auto plan = dataflow::parse_script(script);
  const auto golden = dataflow::interpret(plan, {{kInputPath, readings}});

  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  dfs.write(kInputPath, readings);
  TrackerConfig cfg;
  cfg.num_nodes = 10;
  cfg.seed = seed;
  cfg.policies[1] = AdversaryPolicy{.commission_prob = 0.6};
  cluster::ExecutionTracker tracker(sim, dfs, cfg);
  protocol::ChaosSeam seam(tracker, chaos_for({Mix::kNetworkStorm, seed}));

  auto request = [&](const std::string& name) {
    ClientRequest req = baseline::cluster_bft(script, name, 1, 2, 1);
    req.verifier_timeout_s = 5.0;
    req.max_rerun_waves = 4;
    return req;
  };
  const std::vector<ClientRequest> reqs{request("chaos-a"),
                                        request("chaos-b")};

  Journal journal;
  journal.set_crash_at(5 + (seed * 17) % 150);
  std::vector<ScriptResult> results;
  {
    ClusterBft crashed(sim, dfs, seam.transport, seam.programs, &journal);
    sim.run();  // drain the initial NodeAnnounce over the storm link
    try {
      for (const ClientRequest& r : reqs) (void)crashed.begin_session(r);
      crashed.drive_all();
      crashed.fail_stalled_sessions();
      for (std::size_t s = 1; s <= reqs.size(); ++s) {
        results.push_back(crashed.collect_session(s));
      }
    } catch (const ControllerCrashed&) {
      results.clear();
      ClusterBft recovered(sim, dfs, seam.transport, seam.programs,
                           &journal);
      results = recovered.recover_all(reqs);
    }
  }

  ASSERT_EQ(results.size(), reqs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE(reqs[i].name);
    const ScriptResult& res = results[i];
    if (res.verified) {
      ASSERT_TRUE(res.outputs.count(kOutputPath));
      EXPECT_EQ(res.outputs.at(kOutputPath).sorted_rows(),
                golden.at(kOutputPath).sorted_rows())
          << "VERIFIED OUTPUT IS WRONG (integrity violation)";
    } else {
      EXPECT_NE(res.failure, FailureReason::kNone);
      EXPECT_TRUE(res.outputs.empty())
          << "an unverified session promoted outputs";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Storms, ConcurrentChaosSweep,
                         ::testing::Range<std::uint64_t>(1, 13),
                         [](const ::testing::TestParamInfo<std::uint64_t>&
                                ti) {
                           return "s" + std::to_string(ti.param);
                         });

TEST(ChaosSweepTest, FaultCountersProveTheStormWasReal) {
  // The sweep is only meaningful if the fault model actually engages.
  workloads::WeatherConfig wc;
  wc.num_stations = 30;
  wc.readings_per_station = 4;
  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  dfs.write(kInputPath, workloads::generate_weather(wc));
  TrackerConfig cfg;
  cfg.num_nodes = 10;
  cfg.seed = 11;
  cluster::ExecutionTracker tracker(sim, dfs, cfg);
  protocol::ChaosSeam seam(tracker, chaos_for({Mix::kNetworkStorm, 11}));
  ClusterBft controller(sim, dfs, seam.transport, seam.programs);
  sim.run();  // drain the initial NodeAnnounce over the storm link
  ClientRequest req = baseline::cluster_bft(
      workloads::weather_average_analysis(), "counters", 1, 2, 1);
  req.verifier_timeout_s = 5.0;
  req.max_rerun_waves = 4;
  (void)controller.execute(req);
  EXPECT_GT(seam.transport.dropped() + seam.transport.duplicated() +
                seam.transport.reordered() + seam.transport.corrupted(),
            0u);
}

}  // namespace
}  // namespace clusterbft::core
