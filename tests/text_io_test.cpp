#include "dataflow/text_io.hpp"

#include <gtest/gtest.h>

namespace clusterbft::dataflow {
namespace {

const Schema kSchema = Schema::of({{"id", ValueType::kLong},
                                   {"name", ValueType::kChararray},
                                   {"score", ValueType::kDouble}});

TEST(TextIoTest, ParsesWellFormedRows) {
  const auto rel = parse_tsv("1\talice\t3.5\n2\tbob\t-1\n", kSchema);
  ASSERT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.rows()[0].at(0).as_long(), 1);
  EXPECT_EQ(rel.rows()[0].at(1).as_string(), "alice");
  EXPECT_DOUBLE_EQ(rel.rows()[0].at(2).as_double(), 3.5);
  EXPECT_DOUBLE_EQ(rel.rows()[1].at(2).as_double(), -1.0);
}

TEST(TextIoTest, EmptyFieldsAreNull) {
  const auto rel = parse_tsv("1\t\t2.0\n", kSchema);
  EXPECT_TRUE(rel.rows()[0].at(1).is_null());
}

TEST(TextIoTest, HandlesCrLfAndBlankLinesAndNoTrailingNewline) {
  const auto rel = parse_tsv("1\ta\t1.0\r\n\n2\tb\t2.0", kSchema);
  ASSERT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.rows()[1].at(1).as_string(), "b");
}

TEST(TextIoTest, RaggedRowsPaddedOrRejected) {
  const auto rel = parse_tsv("1\tonly-two\n", kSchema);
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.rows()[0].at(2).is_null());

  TsvOptions strict;
  strict.tolerate_ragged_rows = false;
  EXPECT_THROW(parse_tsv("1\tonly-two\n", kSchema, strict), TextIoError);
  EXPECT_THROW(parse_tsv("1\ta\t1.0\textra\n", kSchema, strict),
               TextIoError);
}

TEST(TextIoTest, BadNumbersCoercedOrRejected) {
  const auto rel = parse_tsv("xx\tname\t1.5\n", kSchema);
  EXPECT_TRUE(rel.rows()[0].at(0).is_null());

  TsvOptions strict;
  strict.coerce_errors_to_null = false;
  try {
    parse_tsv("1\ta\t1.0\nxx\tb\t2.0\n", kSchema, strict);
    FAIL() << "expected TextIoError";
  } catch (const TextIoError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(TextIoTest, CustomDelimiter) {
  TsvOptions csv;
  csv.delimiter = ',';
  const auto rel = parse_tsv("7,x,0.25\n", kSchema, csv);
  EXPECT_EQ(rel.rows()[0].at(0).as_long(), 7);
}

TEST(TextIoTest, RoundTrip) {
  const std::string text = "1\talice\t3.5\n2\t\t-0.25\n";
  const auto rel = parse_tsv(text, kSchema);
  const auto rel2 = parse_tsv(to_tsv_text(rel), kSchema);
  EXPECT_EQ(rel.rows(), rel2.rows());
}

TEST(TextIoTest, DoubleRenderingRoundTrips) {
  Relation rel(Schema::of({{"d", ValueType::kDouble}}));
  rel.add(Tuple({Value(0.1)}));
  rel.add(Tuple({Value(1.0 / 3.0)}));
  const auto back =
      parse_tsv(to_tsv_text(rel), Schema::of({{"d", ValueType::kDouble}}));
  EXPECT_EQ(rel.rows(), back.rows());
}

}  // namespace
}  // namespace clusterbft::dataflow
