#include "cluster/scheduler.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace clusterbft::cluster {
namespace {

ResourceEntry node_with_sids(std::initializer_list<const char*> sids) {
  ResourceEntry e;
  e.nid = 0;
  e.total_ru = 3;
  for (const char* s : sids) {
    e.sids.insert(s);
    ++e.used_ru;
  }
  return e;
}

std::vector<TaskCandidate> candidates(std::initializer_list<const char*> sids) {
  std::vector<TaskCandidate> out;
  std::size_t i = 0;
  for (const char* s : sids) {
    TaskCandidate c;
    c.run_id = i++;
    c.sid = s;
    out.push_back(std::move(c));
  }
  return out;
}

TEST(SchedulerTest, FifoPicksFirst) {
  FifoScheduler fifo;
  const auto safe = candidates({"a", "b"});
  EXPECT_EQ(fifo.pick(node_with_sids({}), safe), 0u);
}

TEST(SchedulerTest, FifoDeclinesNothing) {
  FifoScheduler fifo;
  EXPECT_EQ(fifo.pick(node_with_sids({}), {}), std::nullopt);
}

TEST(SchedulerTest, OverlapPrefersNewSid) {
  OverlapScheduler ov;
  // Node already runs "a": the scheduler should pick the "b" task to
  // maximise job-cluster intersections.
  const auto safe = candidates({"a", "b"});
  EXPECT_EQ(ov.pick(node_with_sids({"a"}), safe), 1u);
}

TEST(SchedulerTest, OverlapFallsBackToFirstWhenAllSidsPresent) {
  OverlapScheduler ov;
  const auto safe = candidates({"a", "b"});
  EXPECT_EQ(ov.pick(node_with_sids({"a", "b"}), safe), 0u);
}

TEST(SchedulerTest, OverlapOnEmptyNodeActsLikeFifo) {
  OverlapScheduler ov;
  const auto safe = candidates({"a", "b"});
  EXPECT_EQ(ov.pick(node_with_sids({}), safe), 0u);
}

TEST(ResourceTableTest, AllocateReleaseLifecycle) {
  ResourceTable rt;
  rt.add_nodes(2, 3);
  EXPECT_EQ(rt.size(), 2u);
  rt.allocate(0, "a");
  rt.allocate(0, "a");
  EXPECT_EQ(rt.entry(0).free_ru(), 1u);
  EXPECT_EQ(rt.entry(0).sids.count("a"), 2u);
  rt.release(0, "a");
  EXPECT_EQ(rt.entry(0).free_ru(), 2u);
  EXPECT_EQ(rt.entry(0).sids.count("a"), 1u);
}

TEST(ResourceTableTest, OverAllocationThrows) {
  ResourceTable rt;
  rt.add_nodes(1, 1);
  rt.allocate(0, "a");
  EXPECT_THROW(rt.allocate(0, "b"), CheckError);
}

TEST(ResourceTableTest, ReleasingUnknownSidThrows) {
  ResourceTable rt;
  rt.add_nodes(1, 2);
  rt.allocate(0, "a");
  EXPECT_THROW(rt.release(0, "b"), CheckError);
}

TEST(ResourceTableTest, SuspicionIsFaultsOverJobs) {
  ResourceTable rt;
  rt.add_nodes(1, 1);
  EXPECT_DOUBLE_EQ(rt.entry(0).suspicion(), 0.0);
  rt.record_execution(0);
  rt.record_execution(0);
  rt.record_fault(0);
  EXPECT_DOUBLE_EQ(rt.entry(0).suspicion(), 0.5);
}

TEST(ResourceTableTest, ThresholdExcludesOnce) {
  ResourceTable rt;
  rt.add_nodes(3, 1);
  rt.record_execution(0);
  rt.record_fault(0);  // s = 1.0
  rt.record_execution(1);  // s = 0.0
  auto excluded = rt.apply_threshold(0.8);
  ASSERT_EQ(excluded.size(), 1u);
  EXPECT_EQ(excluded[0], 0u);
  EXPECT_TRUE(rt.entry(0).excluded);
  EXPECT_EQ(rt.excluded_count(), 1u);
  // Idempotent: already-excluded nodes are not reported again.
  EXPECT_TRUE(rt.apply_threshold(0.8).empty());
}

}  // namespace
}  // namespace clusterbft::cluster
