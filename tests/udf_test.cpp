// User-defined function tests: the standard scalar library, custom
// registrations, aggregate UDFs over grouped bags, and parser
// integration.
#include "dataflow/udf.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"

namespace clusterbft::dataflow {
namespace {

std::int64_t L(std::int64_t x) { return x; }

Relation table(std::vector<std::vector<Value>> rows,
               std::vector<Field> fields) {
  Relation r(Schema(std::move(fields)));
  for (auto& row : rows) r.add(Tuple(std::move(row)));
  return r;
}

TEST(UdfTest, StandardLibraryScalars) {
  auto eval1 = [](const char* fn, Value arg) {
    const auto* udf = UdfRegistry::instance().find_scalar(fn);
    CBFT_CHECK(udf != nullptr);
    return udf->fn({std::move(arg)});
  };
  EXPECT_EQ(eval1("ABS", Value(L(-5))).as_long(), 5);
  EXPECT_DOUBLE_EQ(eval1("ABS", Value(-2.5)).as_double(), 2.5);
  EXPECT_EQ(eval1("ROUND", Value(2.6)).as_long(), 3);
  EXPECT_EQ(eval1("ROUND", Value(L(7))).as_long(), 7);
  EXPECT_EQ(eval1("SIZE", Value("hello")).as_long(), 5);
  EXPECT_EQ(eval1("UPPER", Value("aBc")).as_string(), "ABC");
  EXPECT_EQ(eval1("LOWER", Value("AbC")).as_string(), "abc");
  EXPECT_TRUE(eval1("ABS", Value::null()).is_null());
}

TEST(UdfTest, ConcatTakesTwoArguments) {
  const auto* udf = UdfRegistry::instance().find_scalar("CONCAT");
  ASSERT_NE(udf, nullptr);
  EXPECT_EQ(udf->arity, 2u);
  EXPECT_EQ(udf->fn({Value("a"), Value("b")}).as_string(), "ab");
  EXPECT_EQ(udf->fn({Value("x"), Value(L(3))}).as_string(), "x3");
}

TEST(UdfTest, ScalarUdfsInScripts) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long, s:chararray);\n"
      "b = FOREACH a GENERATE ABS(x) AS ax, UPPER(s) AS us, "
      "CONCAT(s, 'Z') AS sz;\n"
      "STORE b INTO 'out';\n");
  const Relation in = table({{Value(L(-3)), Value("hi")}},
                            {{"x", ValueType::kLong},
                             {"s", ValueType::kChararray}});
  const auto out = interpret(plan, {{"in", in}});
  const Tuple& row = out.at("out").rows()[0];
  EXPECT_EQ(row.at(0).as_long(), 3);
  EXPECT_EQ(row.at(1).as_string(), "HI");
  EXPECT_EQ(row.at(2).as_string(), "hiZ");
}

TEST(UdfTest, ScalarUdfInFilterPredicate) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long);\n"
      "b = FILTER a BY ABS(x) > 2;\n"
      "STORE b INTO 'out';\n");
  const Relation in = table({{Value(L(-5))}, {Value(L(1))}, {Value(L(3))}},
                            {{"x", ValueType::kLong}});
  const auto out = interpret(plan, {{"in", in}});
  EXPECT_EQ(out.at("out").size(), 2u);
}

TEST(UdfTest, WrongArityIsAParseError) {
  EXPECT_THROW(parse_script("a = LOAD 'i' AS (x:long);\n"
                            "b = FOREACH a GENERATE ABS(x, x);\n"
                            "STORE b INTO 'o';\n"),
               ParseError);
  EXPECT_THROW(parse_script("a = LOAD 'i' AS (s:chararray);\n"
                            "b = FOREACH a GENERATE CONCAT(s);\n"
                            "STORE b INTO 'o';\n"),
               ParseError);
}

TEST(UdfTest, UnknownFunctionStillAnError) {
  EXPECT_THROW(parse_script("a = LOAD 'i' AS (x:long);\n"
                            "b = FOREACH a GENERATE NO_SUCH_FN(x);\n"
                            "STORE b INTO 'o';\n"),
               ParseError);
}

TEST(UdfTest, CustomAggregateUdf) {
  // Register a product aggregate, then use it after GROUP.
  UdfRegistry::AggregateUdf prod;
  prod.needs_column = true;
  prod.result_type = ValueType::kLong;
  prod.fn = [](const std::vector<Tuple>& bag,
               std::optional<std::size_t> col) {
    std::int64_t p = 1;
    for (const Tuple& t : bag) {
      const Value& v = t.at(*col);
      if (!v.is_null()) p *= v.as_long();
    }
    return Value(p);
  };
  UdfRegistry::instance().register_aggregate("PRODUCT", prod);

  const auto plan = parse_script(
      "a = LOAD 'in' AS (k:long, v:long);\n"
      "g = GROUP a BY k;\n"
      "c = FOREACH g GENERATE group, PRODUCT(a.v) AS p;\n"
      "STORE c INTO 'out';\n");
  const Relation in = table(
      {{Value(L(1)), Value(L(3))}, {Value(L(1)), Value(L(4))},
       {Value(L(2)), Value(L(5))}},
      {{"k", ValueType::kLong}, {"v", ValueType::kLong}});
  const auto out = interpret(plan, {{"in", in}});
  ASSERT_EQ(out.at("out").size(), 2u);
  EXPECT_EQ(out.at("out").rows()[0].at(1).as_long(), 12);
  EXPECT_EQ(out.at("out").rows()[1].at(1).as_long(), 5);
}

TEST(UdfTest, AggregateUdfOutsideGroupIsAnError) {
  EXPECT_THROW(parse_script("a = LOAD 'i' AS (x:long);\n"
                            "b = FOREACH a GENERATE PRODUCT(a.x);\n"
                            "STORE b INTO 'o';\n"),
               ParseError);
}

TEST(UdfTest, ResultTypesPropagateIntoSchemas) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (s:chararray);\n"
      "b = FOREACH a GENERATE SIZE(s) AS n, UPPER(s) AS u;\n"
      "STORE b INTO 'out';\n");
  EXPECT_EQ(plan.node(1).schema.at(0).type, ValueType::kLong);
  EXPECT_EQ(plan.node(1).schema.at(1).type, ValueType::kChararray);
}

TEST(UdfTest, RegistrationReplacesPrevious) {
  UdfRegistry::ScalarUdf f;
  f.arity = 1;
  f.result_type = ValueType::kLong;
  f.fn = [](const std::vector<Value>&) { return Value(L(1)); };
  UdfRegistry::instance().register_scalar("TEST_REPLACE", f);
  f.fn = [](const std::vector<Value>&) { return Value(L(2)); };
  UdfRegistry::instance().register_scalar("TEST_REPLACE", f);
  EXPECT_EQ(UdfRegistry::instance()
                .find_scalar("TEST_REPLACE")
                ->fn({Value::null()})
                .as_long(),
            2);
}

}  // namespace
}  // namespace clusterbft::dataflow
