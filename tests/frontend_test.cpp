// Multi-tenant front end: per-script sessions, fair cross-request
// scheduling, and the digest-keyed verified-result cache.
//
// The load-bearing claims under test:
//  * a cache hit is byte-identical to a cold re-execution — outputs AND
//    the verified digest-vector fingerprint at every verification point;
//  * N concurrent sessions produce per-session outputs, metrics (minus
//    latency) and canonical audit transcripts bit-identical to the same
//    N requests executed serially — including after an injected
//    mid-flight controller crash and recover_all();
//  * a stalled session fails with diagnostics naming the session, wave,
//    and what it was waiting on;
//  * the front end's WRR admission respects tenant caps and reports
//    service metrics.
#include "frontend/frontend.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/presets.hpp"
#include "cluster/tracker.hpp"
#include "common/guarded.hpp"
#include "core/controller.hpp"
#include "core/journal.hpp"
#include "core/result_cache.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"
#include "protocol/seam.hpp"
#include "workloads/airline.hpp"
#include "workloads/mixed.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"
#include "workloads/weather.hpp"

namespace clusterbft::frontend {
namespace {

using cluster::AdversaryPolicy;
using cluster::TrackerConfig;
using core::ClientRequest;
using core::ClusterBft;
using core::ScriptResult;

struct World {
  cluster::EventSim sim;
  mapreduce::Dfs dfs{16384};
  std::unique_ptr<cluster::ExecutionTracker> tracker;
  std::unique_ptr<protocol::LoopbackSeam> seam;
  std::unique_ptr<ClusterBft> controller;

  explicit World(TrackerConfig cfg = {}, core::Journal* journal = nullptr) {
    load_inputs(dfs);
    tracker = std::make_unique<cluster::ExecutionTracker>(sim, dfs, cfg);
    seam = std::make_unique<protocol::LoopbackSeam>(*tracker);
    controller = std::make_unique<ClusterBft>(sim, dfs, seam->transport,
                                              seam->programs, journal);
  }

  static void load_inputs(mapreduce::Dfs& dfs) {
    workloads::TwitterConfig tw;
    tw.num_edges = 800;
    tw.num_users = 120;
    dfs.write("twitter/edges", workloads::generate_twitter_edges(tw));
    workloads::WeatherConfig wc;
    wc.num_stations = 60;
    wc.readings_per_station = 4;
    dfs.write("weather/gsod", workloads::generate_weather(wc));
    workloads::AirlineConfig ac;
    ac.num_flights = 500;
    dfs.write("airline/flights", workloads::generate_flights(ac));
  }
};

ClientRequest make_request(const workloads::TenantRequest& tr,
                           bool use_cache) {
  ClientRequest req = baseline::cluster_bft(tr.script, tr.name, 1, 2, 2);
  req.verifier_timeout_s = 1e9;  // contention must never fake an omission
  req.use_result_cache = use_cache;
  return req;
}

/// Request-order scopes ("name#serial") for a request sequence.
std::vector<std::string> scopes_of(const std::vector<ClientRequest>& reqs) {
  std::map<std::string, std::size_t> serial;
  std::vector<std::string> out;
  for (const ClientRequest& r : reqs) {
    out.push_back(r.name + "#" + std::to_string(++serial[r.name]));
  }
  return out;
}

void expect_equal_modulo_latency(const ScriptResult& got,
                                 const ScriptResult& want,
                                 const std::string& scope) {
  SCOPED_TRACE(scope);
  ASSERT_EQ(got.verified, want.verified);
  EXPECT_EQ(got.degraded, want.degraded);
  EXPECT_EQ(got.failure, want.failure);
  ASSERT_EQ(got.outputs.size(), want.outputs.size());
  for (const auto& [path, rel] : want.outputs) {
    ASSERT_TRUE(got.outputs.count(path)) << path;
    EXPECT_EQ(got.outputs.at(path).sorted_rows(), rel.sorted_rows()) << path;
  }
  // Latency depends on queueing; everything else must match bit for bit.
  EXPECT_EQ(got.metrics.cpu_seconds, want.metrics.cpu_seconds);
  EXPECT_EQ(got.metrics.file_read, want.metrics.file_read);
  EXPECT_EQ(got.metrics.file_write, want.metrics.file_write);
  EXPECT_EQ(got.metrics.hdfs_write, want.metrics.hdfs_write);
  EXPECT_EQ(got.metrics.digested, want.metrics.digested);
  EXPECT_EQ(got.metrics.runs, want.metrics.runs);
  EXPECT_EQ(got.metrics.waves, want.metrics.waves);
  EXPECT_EQ(got.metrics.rollbacks, want.metrics.rollbacks);
  EXPECT_EQ(got.metrics.digest_reports, want.metrics.digest_reports);
  EXPECT_EQ(got.metrics.cache_hits, want.metrics.cache_hits);
  EXPECT_EQ(got.commission_faults_seen, want.commission_faults_seen);
  EXPECT_EQ(got.omission_faults_seen, want.omission_faults_seen);
  EXPECT_EQ(got.verified_digest_hex, want.verified_digest_hex)
      << "verification-point fingerprints diverged";
}

std::vector<ClientRequest> mixed_requests(std::size_t count, bool use_cache) {
  std::vector<ClientRequest> reqs;
  for (const auto& tr : workloads::mixed_tenant_workload(count, 11, 0.5)) {
    reqs.push_back(make_request(tr, use_cache));
  }
  return reqs;
}

// ---------------------------------------------------------------- cache

TEST(FrontendTest, CacheHitIsByteIdenticalToColdExecution) {
  World w;
  ClientRequest req = make_request(
      {.tenant = "t", .weight = 1, .priority = 0, .name = "cached",
       .script = workloads::weather_average_analysis()},
      /*use_cache=*/true);

  const ScriptResult cold = w.controller->execute(req);
  ASSERT_TRUE(cold.verified);
  EXPECT_EQ(cold.metrics.cache_hits, 0u);
  ASSERT_FALSE(cold.verified_digest_hex.empty())
      << "the scenario must exercise verification points";

  const ScriptResult hit = w.controller->execute(req);
  ASSERT_TRUE(hit.verified);
  EXPECT_GT(hit.metrics.cache_hits, 0u) << "second run must hit the cache";
  EXPECT_LT(hit.metrics.runs, cold.metrics.runs)
      << "adopted sub-graphs must not re-execute";

  // Byte-identical evidence: same relations, and the same verified
  // digest-vector fingerprint at every verification point. The sids
  // differ only in the scope prefix (cached#1 vs cached#2).
  ASSERT_EQ(hit.outputs.size(), cold.outputs.size());
  for (const auto& [path, rel] : cold.outputs) {
    EXPECT_EQ(hit.outputs.at(path).sorted_rows(), rel.sorted_rows()) << path;
  }
  ASSERT_EQ(hit.verified_digest_hex.size(), cold.verified_digest_hex.size());
  auto strip = [](const std::string& sid) {
    return sid.substr(sid.find(':') + 1);
  };
  std::map<std::string, std::string> cold_fp;
  std::map<std::string, std::string> hit_fp;
  for (const auto& [sid, fp] : cold.verified_digest_hex) {
    cold_fp[strip(sid)] = fp;
  }
  for (const auto& [sid, fp] : hit.verified_digest_hex) {
    hit_fp[strip(sid)] = fp;
  }
  EXPECT_EQ(hit_fp, cold_fp) << "adopted fingerprints diverged from cold";

  const auto stats = w.controller->cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.insertions, 0u);

  // Audit trail names every adoption.
  EXPECT_NE(w.controller->audit_log().to_string().find("cache-hit"),
            std::string::npos);
}

TEST(FrontendTest, ConvictionInvalidatesDependentCacheEntries) {
  // The cache's invalidation contract in isolation: entries remember
  // their contributor set, and convicting any contributor kills every
  // dependent entry (the controller wires invalidate_node into
  // attribute_commission and kProbeCommission outcomes).
  const common::RoleGuard held(common::scheduler_thread_role);
  core::ResultCache cache;
  const crypto::Digest256 ka = crypto::Digest256::of("subgraph-a");
  const crypto::Digest256 kb = crypto::Digest256::of("subgraph-b");
  const crypto::Digest256 kc = crypto::Digest256::of("subgraph-c");
  cache.insert(ka, {crypto::Digest256::of("fp-a"), "wave/a", {0, 1, 2}});
  // A dependent entry inherits its dependency's contributors.
  cache.insert(kb, {crypto::Digest256::of("fp-b"), "wave/b", {0, 1, 2, 3}});
  cache.insert(kc, {crypto::Digest256::of("fp-c"), "wave/c", {4, 5}});
  // First insert wins: re-inserting under ka must not churn the path.
  cache.insert(ka, {crypto::Digest256::of("fp-a"), "wave/a2", {7}});
  ASSERT_NE(cache.lookup(ka), nullptr);
  EXPECT_EQ(cache.lookup(ka)->output_path, "wave/a");

  // Convict node 2: a and b (which depends on a) die, c survives.
  EXPECT_EQ(cache.invalidate_node(2), 2u);
  EXPECT_EQ(cache.lookup(ka), nullptr);
  EXPECT_EQ(cache.lookup(kb), nullptr);
  ASSERT_NE(cache.lookup(kc), nullptr);
  EXPECT_EQ(cache.lookup(kc)->output_path, "wave/c");
  // Convicting a non-contributor is a no-op.
  EXPECT_EQ(cache.invalidate_node(2), 0u);

  const auto& stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u) << "duplicate insert must not count";
  EXPECT_EQ(stats.invalidated, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

// ------------------------------------------------- concurrent == serial

TEST(FrontendTest, SixteenConcurrentSessionsMatchSerialBitForBit) {
  const std::vector<ClientRequest> reqs =
      mixed_requests(16, /*use_cache=*/false);
  const std::vector<std::string> scopes = scopes_of(reqs);

  // Serial reference: one world, one controller, requests one at a time.
  World serial;
  std::vector<ScriptResult> want;
  for (const ClientRequest& r : reqs) {
    want.push_back(serial.controller->execute(r));
    ASSERT_TRUE(want.back().verified) << want.size() - 1;
  }

  // Concurrent: twin world, all sixteen sessions in flight at once.
  World conc;
  std::vector<std::size_t> session;
  for (const ClientRequest& r : reqs) {
    session.push_back(conc.controller->begin_session(r));
  }
  EXPECT_EQ(conc.controller->active_sessions(), reqs.size());
  conc.controller->drive_all();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const ScriptResult got = conc.controller->collect_session(session[i]);
    expect_equal_modulo_latency(got, want[i], scopes[i]);
  }

  // Canonical per-session audit transcripts are bit-identical despite
  // the interleaving.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(conc.controller->audit_log().transcript(scopes[i]),
              serial.controller->audit_log().transcript(scopes[i]))
        << "audit transcript diverged for " << scopes[i];
  }
}

TEST(FrontendTest, ConcurrentSessionsRecoverBitIdenticalAfterCrash) {
  const std::vector<ClientRequest> reqs =
      mixed_requests(16, /*use_cache=*/false);
  const std::vector<std::string> scopes = scopes_of(reqs);

  // Serial reference (no journal, no crash).
  World serial;
  std::vector<ScriptResult> want;
  for (const ClientRequest& r : reqs) {
    want.push_back(serial.controller->execute(r));
  }

  // Record count of an uninterrupted concurrent run, to pick crash points.
  core::Journal ref_journal;
  {
    World ref({}, &ref_journal);
    for (const ClientRequest& r : reqs) {
      (void)ref.controller->begin_session(r);
    }
    ref.controller->drive_all();
    for (std::size_t s = 1; s <= reqs.size(); ++s) {
      (void)ref.controller->collect_session(s);
    }
  }
  const std::size_t records = ref_journal.size();
  ASSERT_GT(records, 32u);

  // A spread of mid-flight crash points (the exhaustive per-record sweep
  // lives in crash_recovery_test; this one proves the multi-session
  // recovery path at scale).
  for (const std::size_t k :
       {records / 5, records / 2, (records * 4) / 5, records - 1}) {
    SCOPED_TRACE("crash at journal record " + std::to_string(k));
    core::Journal journal;
    journal.set_crash_at(k);
    World w({}, &journal);
    ClusterBft& crashed = *w.controller;
    try {
      for (const ClientRequest& r : reqs) {
        (void)crashed.begin_session(r);
      }
      crashed.drive_all();
      for (std::size_t s = 1; s <= reqs.size(); ++s) {
        (void)crashed.collect_session(s);
      }
      FAIL() << "crash point never fired";
    } catch (const core::ControllerCrashed&) {
    }
    ASSERT_TRUE(journal.crashed());

    ClusterBft recovered(w.sim, w.dfs, w.seam->transport, w.seam->programs,
                         &journal);
    const std::vector<ScriptResult> got = recovered.recover_all(reqs);
    ASSERT_EQ(got.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      expect_equal_modulo_latency(got[i], want[i], scopes[i]);
      EXPECT_EQ(recovered.audit_log().transcript(scopes[i]),
                serial.controller->audit_log().transcript(scopes[i]))
          << "audit transcript diverged for " << scopes[i];
    }
    EXPECT_FALSE(journal.recovery_pending());
  }
}

// ------------------------------------------------------------- frontend

TEST(FrontendTest, MixedTenantStreamCompletesWithFairnessCaps) {
  World w;
  FrontendOptions opts;
  opts.max_concurrent = 4;
  opts.per_tenant_inflight = 2;
  Frontend fe(*w.controller, w.sim, opts);

  const auto workload = workloads::mixed_tenant_workload(12, 3, 0.5);
  std::vector<std::size_t> tickets;
  for (const auto& tr : workload) {
    Submission s;
    s.request = make_request(tr, /*use_cache=*/true);
    s.tenant = tr.tenant;
    s.weight = tr.weight;
    s.priority = tr.priority;
    tickets.push_back(fe.submit(s));
  }
  fe.run();

  const ServiceMetrics m = fe.metrics();
  EXPECT_EQ(m.submitted, workload.size());
  EXPECT_EQ(m.admitted, workload.size());
  EXPECT_EQ(m.completed, workload.size());
  EXPECT_EQ(m.failed, 0u);
  EXPECT_GT(m.queued_peak, 0u) << "caps must actually queue something";
  EXPECT_GT(m.requests_per_s, 0.0);
  EXPECT_GE(m.p99_latency_s, m.p50_latency_s);
  EXPECT_GT(m.cache_hits, 0u)
      << "repeated sub-queries must hit the shared cache";

  for (std::size_t t : tickets) {
    const ScriptResult* res = fe.result(t);
    ASSERT_NE(res, nullptr);
    EXPECT_TRUE(res->verified);
  }
}

TEST(FrontendTest, PerRequestResultsMatchInterpreter) {
  World w;
  Frontend fe(*w.controller, w.sim, {});
  Submission s;
  s.request = make_request(
      {.tenant = "t", .weight = 1, .priority = 0, .name = "golden",
       .script = workloads::twitter_follower_analysis()},
      /*use_cache=*/false);
  const std::size_t t = fe.submit(s);
  fe.run();
  const ScriptResult* res = fe.result(t);
  ASSERT_NE(res, nullptr);
  ASSERT_TRUE(res->verified);
  const auto plan = dataflow::parse_script(s.request.script);
  const auto golden = dataflow::interpret(
      plan, {{"twitter/edges", w.dfs.read("twitter/edges")}});
  for (const auto& [path, rel] : golden) {
    EXPECT_EQ(res->outputs.at(path).sorted_rows(), rel.sorted_rows()) << path;
  }
}

// -------------------------------------------------------------- stalls

TEST(FrontendTest, StalledSessionDiagnosticsNameWaveAndDependency) {
  // Every node swallows every task, and the script carries no
  // verification points (pure Pig), so no verifier timeout is armed: the
  // event queue drains with the run incomplete. The session must fail as
  // kStalled with diagnostics, not hang or crash.
  TrackerConfig cfg;
  cfg.num_nodes = 4;
  for (cluster::NodeId n = 0; n < 4; ++n) {
    cfg.policies[n] = AdversaryPolicy{.omission_prob = 1.0};
  }
  World w(cfg);
  Frontend fe(*w.controller, w.sim, {});
  Submission s;
  s.request = baseline::pure_pig(workloads::twitter_follower_analysis(),
                                 "stuck");
  const std::size_t t = fe.submit(s);
  fe.run();

  const ScriptResult* res = fe.result(t);
  ASSERT_NE(res, nullptr);
  EXPECT_FALSE(res->verified);
  EXPECT_EQ(res->failure, core::FailureReason::kStalled);
  const std::string audit = w.controller->audit_log().to_string();
  EXPECT_NE(audit.find("stalled"), std::string::npos) << audit;
  EXPECT_NE(audit.find("stuck#1"), std::string::npos)
      << "diagnostics must name the session: " << audit;
  EXPECT_NE(audit.find("wave 0"), std::string::npos)
      << "diagnostics must name the wave: " << audit;
  EXPECT_NE(audit.find("never completed"), std::string::npos)
      << "diagnostics must say what it waited on: " << audit;
  const ServiceMetrics m = fe.metrics();
  EXPECT_EQ(m.failed, 1u);
  EXPECT_EQ(m.completed, 0u);
}

}  // namespace
}  // namespace clusterbft::frontend
