// The verifier's behaviour over an unreliable control-plane transport
// (§5.4): digests that are merely LATE must not convict anyone, digests
// that are DROPPED make the run look like a silent replica — verifier
// timeout, omission attribution, rerun — and a digest path that never
// heals exhausts the rerun budget and reports failure honestly. In every
// case a verified answer still equals the reference interpreter's.
#include <gtest/gtest.h>

#include "baseline/presets.hpp"
#include "cluster/tracker.hpp"
#include "core/controller.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"
#include "protocol/seam.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"

namespace clusterbft::core {
namespace {

struct World {
  cluster::EventSim sim;
  mapreduce::Dfs dfs{16384};
  cluster::ExecutionTracker tracker;
  protocol::LossySeam seam;
  ClusterBft controller;
  dataflow::Relation edges;

  explicit World(protocol::LossyConfig cfg,
                 cluster::TrackerConfig tcfg = make_tracker_config())
      : tracker(sim, dfs, tcfg),
        seam(tracker, cfg),
        controller(sim, dfs, seam.transport, seam.programs) {
    workloads::TwitterConfig tw;
    tw.num_edges = 800;
    tw.num_users = 100;
    tw.seed = 7;
    edges = workloads::generate_twitter_edges(tw);
    dfs.write("twitter/edges", edges);
    // Drain the initial NodeAnnounce (it travels the lossy link too) so
    // the control tier's membership mirror is populated before submit.
    sim.run();
  }

  static cluster::TrackerConfig make_tracker_config() {
    cluster::TrackerConfig tcfg;
    tcfg.num_nodes = 12;
    tcfg.seed = 5;
    return tcfg;
  }

  ScriptResult run(const std::string& name) {
    return controller.execute(baseline::cluster_bft(
        workloads::twitter_follower_analysis(), name, /*f=*/1, /*r=*/2,
        /*n=*/1));
  }

  void expect_output_correct(const ScriptResult& res) {
    const auto plan =
        dataflow::parse_script(workloads::twitter_follower_analysis());
    const auto golden = dataflow::interpret(plan, {{"twitter/edges", edges}});
    ASSERT_EQ(res.outputs.at("out/follower_counts").sorted_rows(),
              golden.at("out/follower_counts").sorted_rows());
  }
};

TEST(LossyTransportTest, LateDigestsConvictNobody) {
  // Every DigestBatch arrives 5 simulated seconds late — well inside the
  // verifier timeout. Verification must proceed exactly as if the link
  // were perfect: no reruns, no omission or commission faults, nobody
  // suspected.
  protocol::LossyConfig cfg;
  cfg.digest_delay_s = 5.0;
  World w(cfg);
  const auto res = w.run("late");
  ASSERT_TRUE(res.verified);
  EXPECT_EQ(res.metrics.waves, 2u);  // the two initial replicas only
  EXPECT_EQ(res.commission_faults_seen, 0u);
  EXPECT_EQ(res.omission_faults_seen, 0u);
  EXPECT_TRUE(res.suspects.empty());
  EXPECT_EQ(w.seam.transport.dropped(), 0u);
  w.expect_output_correct(res);
}

TEST(LossyTransportTest, DroppedDigestsLookLikeSilentReplicasThenRecover) {
  // The digest path is dead until t=500s: runs complete their outputs but
  // the verifier never hears from them, so they time out like silent
  // replicas — omission attribution and reruns with escalating timeouts —
  // until reruns land after the blackout and verification succeeds.
  protocol::LossyConfig cfg;
  cfg.digest_blackout_until_s = 500.0;
  World w(cfg);
  const auto res = w.run("blackout");
  ASSERT_TRUE(res.verified);
  EXPECT_GT(res.metrics.waves, 2u);  // reruns happened
  EXPECT_GT(res.omission_faults_seen, 0u);
  EXPECT_EQ(res.commission_faults_seen, 0u);  // nobody framed for the outage
  EXPECT_GT(w.seam.transport.dropped(), 0u);
  w.expect_output_correct(res);
}

TEST(LossyTransportTest, PermanentDigestLossExhaustsRerunsHonestly) {
  // Digests never arrive at all. Every wave times out, the rerun budget
  // runs dry, and the controller reports an unverified (but honestly
  // unverified) execution — it must not abort, hang, or claim success.
  protocol::LossyConfig cfg;
  cfg.digest_drop_prob = 1.0;
  World w(cfg);
  const auto res = w.run("dead");
  EXPECT_FALSE(res.verified);
  EXPECT_GT(res.omission_faults_seen, 0u);
  EXPECT_EQ(res.commission_faults_seen, 0u);
  EXPECT_GT(w.seam.transport.dropped(), 0u);
}

TEST(LossyTransportTest, GeneralLinkLossStillVerifies) {
  // A symmetrically lossy link (1% drop + 5% duplication on every
  // message, both ways) exercises the retries implicit in the
  // timeout->rerun loop: a dropped SubmitRun or RunComplete is
  // indistinguishable from a hung replica and is handled the same way,
  // and duplicated events are absorbed by the control-plane mirror's
  // per-run sequence-number dedup (the old at-most-once digest-path
  // assumption is gone). ClusterBFT still reaches a verified, correct
  // answer. LossyConfig/LossySeam are thin aliases of the chaos
  // transport (protocol/chaos.hpp), which adds reordering and
  // corruption on top — the full storm lives in chaos_sweep_test.
  protocol::LossyConfig cfg;
  cfg.link.drop_prob = 0.01;
  cfg.link.dup_prob = 0.05;
  cfg.seed = 11;
  World w(cfg);
  const auto res = w.run("noisy");
  ASSERT_TRUE(res.verified);
  EXPECT_EQ(res.commission_faults_seen, 0u);
  EXPECT_GT(w.seam.transport.duplicated(), 0u);
  w.expect_output_correct(res);
}

}  // namespace
}  // namespace clusterbft::core
