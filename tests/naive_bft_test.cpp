// Naive per-stage BFT (synchronous verification at every job boundary —
// Fig. 1 part ii) vs ClusterBFT's offline comparison. Correctness is the
// same; the synchronisation cost is what ClusterBFT removes (C2).
#include <gtest/gtest.h>

#include "baseline/presets.hpp"
#include "cluster/tracker.hpp"
#include "core/controller.hpp"
#include "protocol/seam.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"
#include "workloads/scripts.hpp"
#include "workloads/weather.hpp"

namespace clusterbft::core {
namespace {

using cluster::AdversaryPolicy;
using cluster::TrackerConfig;

struct World {
  cluster::EventSim sim;
  mapreduce::Dfs dfs{16384};
  std::unique_ptr<cluster::ExecutionTracker> tracker;
  std::unique_ptr<protocol::LoopbackSeam> seam;
  std::unique_ptr<ClusterBft> controller;

  explicit World(TrackerConfig cfg = {}) {
    cfg.num_nodes = 16;
    tracker = std::make_unique<cluster::ExecutionTracker>(sim, dfs, cfg);
    seam = std::make_unique<protocol::LoopbackSeam>(*tracker);
    controller = std::make_unique<ClusterBft>(sim, dfs, seam->transport,
                                              seam->programs);
    workloads::WeatherConfig w;
    w.num_stations = 150;
    w.readings_per_station = 10;
    dfs.write("weather/gsod", workloads::generate_weather(w));
  }
};

TEST(NaiveBftTest, VerifiesAndMatchesInterpreter) {
  World w;
  const auto req = baseline::naive_bft(
      workloads::weather_average_analysis(), "naive", 1, 3);
  const auto res = w.controller->execute(req);
  ASSERT_TRUE(res.verified);

  const auto plan =
      dataflow::parse_script(workloads::weather_average_analysis());
  const auto golden = dataflow::interpret(
      plan, {{"weather/gsod", w.dfs.read("weather/gsod")}});
  EXPECT_EQ(res.outputs.at("out/weather_hist").sorted_rows(),
            golden.at("out/weather_hist").sorted_rows());
}

TEST(NaiveBftTest, SynchronisationCostsLatencyOnChains) {
  // Same script, same cluster, same replication, same control-tier
  // decision latency: the per-stage barrier makes naive mode pay the
  // decision round at every job boundary, while offline comparison hides
  // all but the final one off the critical path.
  const double kDecision = 2.0;  // one control-tier agreement round
  double naive_latency = 0, offline_latency = 0;
  {
    World w;
    auto req = baseline::naive_bft(
        workloads::weather_average_analysis(), "n", 1, 3);
    req.decision_latency_s = kDecision;
    naive_latency = w.controller->execute(req).metrics.latency_s;
  }
  {
    World w;
    auto req = baseline::individual(
        workloads::weather_average_analysis(), "o", 1, 3);
    req.decision_latency_s = kDecision;
    offline_latency = w.controller->execute(req).metrics.latency_s;
  }
  // The weather chain has 2 jobs: naive pays ~1 extra decision round.
  EXPECT_GT(naive_latency, offline_latency + 0.75 * kDecision);
}

TEST(NaiveBftTest, SurvivesByzantineNodeWithMasking) {
  TrackerConfig cfg;
  cfg.policies[1] = AdversaryPolicy{.commission_prob = 1.0,
                                    .lie_in_digest = true};
  World w(cfg);
  const auto res = w.controller->execute(baseline::naive_bft(
      workloads::weather_average_analysis(), "naive", 1, 3));
  EXPECT_TRUE(res.verified);
}

}  // namespace
}  // namespace clusterbft::core
