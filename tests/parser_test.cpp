#include "dataflow/parser.hpp"

#include <gtest/gtest.h>

#include "workloads/scripts.hpp"

namespace clusterbft::dataflow {
namespace {

TEST(ParserTest, MinimalLoadStore) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long, y:chararray);\n"
      "STORE a INTO 'out';\n");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.node(0).kind, OpKind::kLoad);
  EXPECT_EQ(plan.node(0).path, "in");
  EXPECT_EQ(plan.node(0).schema.size(), 2u);
  EXPECT_EQ(plan.node(0).schema.at(0).name, "x");
  EXPECT_EQ(plan.node(0).schema.at(1).type, ValueType::kChararray);
  EXPECT_EQ(plan.node(1).kind, OpKind::kStore);
  EXPECT_EQ(plan.node(1).path, "out");
}

TEST(ParserTest, FilterPredicateStructure) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long, y:long);\n"
      "b = FILTER a BY x > 3 AND y IS NOT NULL;\n"
      "STORE b INTO 'out';\n");
  const OpNode& f = plan.node(1);
  ASSERT_EQ(f.kind, OpKind::kFilter);
  EXPECT_EQ(f.predicate->to_string(), "((x > 3) AND y IS NOT NULL)");
}

TEST(ParserTest, ForeachProjectionAndNames) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long, y:long);\n"
      "b = FOREACH a GENERATE x + y AS s, x, 2 * y;\n"
      "STORE b INTO 'out';\n");
  const OpNode& fe = plan.node(1);
  ASSERT_EQ(fe.kind, OpKind::kForeach);
  ASSERT_EQ(fe.schema.size(), 3u);
  EXPECT_EQ(fe.schema.at(0).name, "s");
  EXPECT_EQ(fe.schema.at(1).name, "x");   // derived from the column
  EXPECT_EQ(fe.schema.at(2).name, "f2");  // synthesised
  EXPECT_EQ(fe.schema.at(0).type, ValueType::kLong);
}

TEST(ParserTest, GroupProducesGroupAndBag) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long, y:long);\n"
      "g = GROUP a BY x;\n"
      "c = FOREACH g GENERATE group, COUNT(a), SUM(a.y);\n"
      "STORE c INTO 'out';\n");
  const OpNode& g = plan.node(1);
  ASSERT_EQ(g.kind, OpKind::kGroup);
  ASSERT_EQ(g.group_keys.size(), 1u);
  EXPECT_EQ(g.group_keys[0], 0u);
  EXPECT_EQ(g.schema.at(0).name, "group");
  EXPECT_EQ(g.schema.at(0).type, ValueType::kLong);
  EXPECT_EQ(g.schema.at(1).name, "a");
  EXPECT_EQ(g.schema.at(1).type, ValueType::kBag);

  const OpNode& c = plan.node(2);
  EXPECT_EQ(c.schema.at(0).name, "group");
  EXPECT_EQ(c.schema.at(1).name, "count");
  EXPECT_EQ(c.schema.at(1).type, ValueType::kLong);
  EXPECT_EQ(c.schema.at(2).type, ValueType::kLong);  // SUM of long field
}

TEST(ParserTest, JoinQualifiesFieldNames) {
  const auto plan = parse_script(
      "a = LOAD 'l' AS (x:long, y:long);\n"
      "b = LOAD 'r' AS (x:long, z:long);\n"
      "j = JOIN a BY x, b BY x;\n"
      "p = FOREACH j GENERATE a::x, z;\n"
      "STORE p INTO 'out';\n");
  const OpNode& j = plan.node(2);
  ASSERT_EQ(j.kind, OpKind::kJoin);
  EXPECT_EQ(j.left_keys, std::vector<std::size_t>{0});
  EXPECT_EQ(j.right_keys, std::vector<std::size_t>{0});
  ASSERT_EQ(j.schema.size(), 4u);
  EXPECT_EQ(j.schema.at(0).name, "a::x");
  EXPECT_EQ(j.schema.at(3).name, "b::z");
  // 'z' resolves by unambiguous suffix; 'a::x' by qualified name.
  const OpNode& p = plan.node(3);
  EXPECT_EQ(p.gen[0].expr->to_string(), "a::x");
}

TEST(ParserTest, AmbiguousSuffixIsAnError) {
  EXPECT_THROW(parse_script("a = LOAD 'l' AS (x:long);\n"
                            "b = LOAD 'r' AS (x:long);\n"
                            "j = JOIN a BY x, b BY x;\n"
                            "p = FOREACH j GENERATE x;\n"
                            "STORE p INTO 'out';\n"),
               ParseError);
}

TEST(ParserTest, UnionOrderLimitDistinct) {
  const auto plan = parse_script(
      "a = LOAD 'l' AS (x:long);\n"
      "b = LOAD 'r' AS (x:long);\n"
      "u = UNION a, b;\n"
      "d = DISTINCT u;\n"
      "o = ORDER d BY x DESC;\n"
      "t = LIMIT o 5;\n"
      "STORE t INTO 'out';\n");
  EXPECT_EQ(plan.node(2).kind, OpKind::kUnion);
  EXPECT_EQ(plan.node(2).inputs.size(), 2u);
  EXPECT_EQ(plan.node(3).kind, OpKind::kDistinct);
  EXPECT_EQ(plan.node(4).kind, OpKind::kOrder);
  EXPECT_FALSE(plan.node(4).sort_keys[0].ascending);
  EXPECT_EQ(plan.node(5).kind, OpKind::kLimit);
  EXPECT_EQ(plan.node(5).limit, 5);
}

TEST(ParserTest, PositionalReferences) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long, y:long);\n"
      "p = FOREACH a GENERATE $1, $0;\n"
      "STORE p INTO 'out';\n");
  EXPECT_EQ(plan.node(1).gen[0].expr->column, 1u);
  EXPECT_EQ(plan.node(1).gen[1].expr->column, 0u);
}

TEST(ParserTest, CommentsAndCaseInsensitiveKeywords) {
  const auto plan = parse_script(
      "-- a comment line\n"
      "a = load 'in' as (x:LONG); -- trailing comment\n"
      "store a into 'out';\n");
  EXPECT_EQ(plan.size(), 2u);
}

TEST(ParserTest, AliasRedefinitionUsesLatest) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long);\n"
      "a = FILTER a BY x > 0;\n"
      "STORE a INTO 'out';\n");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.node(2).inputs[0], 1u);  // store reads the filter
}

TEST(ParserTest, ErrorsCarryLocation) {
  try {
    parse_script("a = LOAD 'in' AS (x:long);\nb = FLUB a;\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(ParserTest, ErrorCases) {
  // Unknown alias.
  EXPECT_THROW(parse_script("STORE nope INTO 'out';\n"), ParseError);
  // Unknown field.
  EXPECT_THROW(parse_script("a = LOAD 'i' AS (x:long);\n"
                            "b = FILTER a BY zz > 1;\nSTORE b INTO 'o';\n"),
               ParseError);
  // Unknown type.
  EXPECT_THROW(parse_script("a = LOAD 'i' AS (x:blob);\nSTORE a INTO 'o';\n"),
               ParseError);
  // Unterminated string.
  EXPECT_THROW(parse_script("a = LOAD 'i AS (x:long);\n"), ParseError);
  // Aggregate outside a grouped relation.
  EXPECT_THROW(parse_script("a = LOAD 'i' AS (x:long);\n"
                            "b = FOREACH a GENERATE COUNT(a);\n"
                            "STORE b INTO 'o';\n"),
               ParseError);
  // SUM without a field.
  EXPECT_THROW(parse_script("a = LOAD 'i' AS (x:long);\n"
                            "g = GROUP a BY x;\n"
                            "s = FOREACH g GENERATE SUM(a);\n"
                            "STORE s INTO 'o';\n"),
               ParseError);
  // UNION arity mismatch.
  EXPECT_THROW(parse_script("a = LOAD 'i' AS (x:long);\n"
                            "b = LOAD 'j' AS (x:long, y:long);\n"
                            "u = UNION a, b;\nSTORE u INTO 'o';\n"),
               ParseError);
  // Positional out of range.
  EXPECT_THROW(parse_script("a = LOAD 'i' AS (x:long);\n"
                            "b = FOREACH a GENERATE $3;\nSTORE b INTO 'o';\n"),
               ParseError);
  // Missing semicolon.
  EXPECT_THROW(parse_script("a = LOAD 'i' AS (x:long)\nSTORE a INTO 'o';\n"),
               ParseError);
}

TEST(ParserTest, PaperScriptsParseAndValidate) {
  for (const std::string& script :
       {workloads::twitter_follower_analysis(),
        workloads::twitter_two_hop_analysis(),
        workloads::airline_top20_analysis(),
        workloads::weather_average_analysis()}) {
    const auto plan = parse_script(script);
    EXPECT_GT(plan.size(), 3u);
    EXPECT_FALSE(plan.stores().empty());
  }
}

TEST(ParserTest, TwoHopShapeMatchesFig8ii) {
  const auto plan = parse_script(workloads::twitter_two_hop_analysis());
  std::size_t joins = 0, loads = 0;
  for (const OpNode& n : plan.nodes()) {
    joins += n.kind == OpKind::kJoin;
    loads += n.kind == OpKind::kLoad;
  }
  EXPECT_EQ(joins, 1u);
  EXPECT_EQ(loads, 2u);  // self-join reads the edges twice
}

TEST(ParserTest, AirlineShapeMatchesFig8iii) {
  const auto plan = parse_script(workloads::airline_top20_analysis());
  EXPECT_EQ(plan.stores().size(), 3u);  // multi-store query
  std::size_t groups = 0;
  for (const OpNode& n : plan.nodes()) groups += n.kind == OpKind::kGroup;
  EXPECT_EQ(groups, 3u);
}

}  // namespace
}  // namespace clusterbft::dataflow
