#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/check.hpp"

namespace clusterbft {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), CheckError);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.zipf(100, 1.3);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(23);
  std::size_t low = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    if (rng.zipf(1000, 1.5) <= 10) ++low;
  }
  // The first 10 ranks of a Zipf(1.5) over 1000 carry well over a third
  // of the mass.
  EXPECT_GT(low, trials / 3);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(31);
  parent_copy.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace clusterbft
