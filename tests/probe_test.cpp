// Dummy-job probing tests (§3.3): after a coarse commission fault leaves
// a whole job cluster under suspicion, targeted probe jobs overlaid on
// individual suspects collapse the suspect set to exactly the faulty
// node.
#include <gtest/gtest.h>

#include "baseline/presets.hpp"
#include "cluster/tracker.hpp"
#include "core/controller.hpp"
#include "protocol/seam.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"

namespace clusterbft::core {
namespace {

using cluster::AdversaryPolicy;
using cluster::EventSim;
using cluster::ExecutionTracker;
using cluster::NodeId;
using cluster::TrackerConfig;

struct World {
  EventSim sim;
  mapreduce::Dfs dfs{16384};
  std::unique_ptr<ExecutionTracker> tracker;
  std::unique_ptr<protocol::LoopbackSeam> seam;
  std::unique_ptr<ClusterBft> controller;

  explicit World(TrackerConfig cfg) {
    tracker = std::make_unique<ExecutionTracker>(sim, dfs, cfg);
    seam = std::make_unique<protocol::LoopbackSeam>(*tracker);
    controller = std::make_unique<ClusterBft>(sim, dfs, seam->transport,
                                              seam->programs);
    workloads::TwitterConfig tw;
    tw.num_edges = 1500;
    tw.num_users = 200;
    dfs.write("twitter/edges", workloads::generate_twitter_edges(tw));
  }
};

TEST(ProbeTest, ProbesCollapseSuspectSetToTheFaultyNode) {
  TrackerConfig cfg;
  cfg.num_nodes = 10;
  cfg.policies[1] = AdversaryPolicy{.commission_prob = 1.0};
  World w(cfg);

  // One script with a Byzantine node: a whole job cluster gets suspected.
  const auto res = w.controller->execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "s", 1, 2, 1));
  ASSERT_TRUE(res.verified);
  ASSERT_NE(w.controller->fault_analyzer(), nullptr);
  const auto before = w.controller->fault_analyzer()->suspects();
  ASSERT_GT(before.size(), 1u);  // coarse: the faulty node + bystanders
  ASSERT_TRUE(before.count(1));

  const auto report = w.controller->probe_suspects("twitter/edges");
  EXPECT_EQ(report.probes_run, before.size());
  EXPECT_EQ(report.confirmed_commission, (std::set<NodeId>{1}));
  EXPECT_TRUE(report.confirmed_omission.empty());
  EXPECT_EQ(report.cleared.size(), before.size() - 1);

  // The analyzer now suspects exactly the faulty node.
  EXPECT_EQ(w.controller->fault_analyzer()->suspects(),
            (std::set<NodeId>{1}));
}

TEST(ProbeTest, OmissionSuspectConvictedBySilence) {
  TrackerConfig cfg;
  cfg.num_nodes = 10;
  cfg.policies[1] = AdversaryPolicy{.commission_prob = 1.0};
  cfg.policies[2] = AdversaryPolicy{.omission_prob = 1.0};
  World w(cfg);

  const auto res = w.controller->execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "s", 1, 2, 1));
  ASSERT_TRUE(res.verified);
  ASSERT_NE(w.controller->fault_analyzer(), nullptr);

  const auto report = w.controller->probe_suspects("twitter/edges");
  // If the omission node was among the suspects, the probe convicts it of
  // omission; the commission node of commission.
  if (w.controller->fault_analyzer()->suspects().count(1)) {
    EXPECT_TRUE(report.confirmed_commission.count(1));
  }
  for (NodeId n : report.confirmed_omission) {
    EXPECT_EQ(n, 2u);
  }
}

TEST(ProbeTest, NoSuspectsNoProbes) {
  TrackerConfig cfg;
  cfg.num_nodes = 6;
  World w(cfg);
  const auto res = w.controller->execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "s", 1, 2, 1));
  ASSERT_TRUE(res.verified);
  const auto report = w.controller->probe_suspects("twitter/edges");
  EXPECT_EQ(report.probes_run, 0u);
}

TEST(ProbeTest, ProbingAfterProbingIsStable) {
  TrackerConfig cfg;
  cfg.num_nodes = 10;
  cfg.policies[1] = AdversaryPolicy{.commission_prob = 1.0};
  World w(cfg);
  const auto res = w.controller->execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "s", 1, 2, 1));
  ASSERT_TRUE(res.verified);
  w.controller->probe_suspects("twitter/edges");
  const auto report2 = w.controller->probe_suspects("twitter/edges");
  // Second round probes only the singleton and re-convicts it.
  EXPECT_EQ(report2.probes_run, 1u);
  EXPECT_EQ(report2.confirmed_commission, (std::set<NodeId>{1}));
}

}  // namespace
}  // namespace clusterbft::core
