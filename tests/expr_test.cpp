#include "dataflow/expr.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace clusterbft::dataflow {
namespace {

ExprPtr lit_l(std::int64_t x) { return Expr::literal_of(Value(x)); }
ExprPtr lit_d(double x) { return Expr::literal_of(Value(x)); }
ExprPtr lit_s(const char* s) { return Expr::literal_of(Value(s)); }
ExprPtr lit_null() { return Expr::literal_of(Value::null()); }
ExprPtr col(std::size_t i) { return Expr::column_ref(i, "c" + std::to_string(i)); }

Value eval0(const ExprPtr& e) { return eval_expr(*e, Tuple{}); }

TEST(ExprTest, LongArithmetic) {
  EXPECT_EQ(eval0(Expr::binary(BinOp::kAdd, lit_l(2), lit_l(3))).as_long(), 5);
  EXPECT_EQ(eval0(Expr::binary(BinOp::kSub, lit_l(2), lit_l(3))).as_long(), -1);
  EXPECT_EQ(eval0(Expr::binary(BinOp::kMul, lit_l(4), lit_l(3))).as_long(), 12);
  EXPECT_EQ(eval0(Expr::binary(BinOp::kDiv, lit_l(7), lit_l(2))).as_long(), 3);
  EXPECT_EQ(eval0(Expr::binary(BinOp::kMod, lit_l(7), lit_l(3))).as_long(), 1);
}

TEST(ExprTest, MixedArithmeticPromotesToDouble) {
  const Value v = eval0(Expr::binary(BinOp::kAdd, lit_l(1), lit_d(0.5)));
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.as_double(), 1.5);
}

TEST(ExprTest, DivisionByZeroYieldsNull) {
  EXPECT_TRUE(eval0(Expr::binary(BinOp::kDiv, lit_l(1), lit_l(0))).is_null());
  EXPECT_TRUE(eval0(Expr::binary(BinOp::kDiv, lit_d(1), lit_d(0))).is_null());
  EXPECT_TRUE(eval0(Expr::binary(BinOp::kMod, lit_l(1), lit_l(0))).is_null());
}

TEST(ExprTest, NullPropagatesThroughArithmetic) {
  EXPECT_TRUE(eval0(Expr::binary(BinOp::kAdd, lit_null(), lit_l(1))).is_null());
  EXPECT_TRUE(eval0(Expr::unary(UnOp::kNeg, lit_null())).is_null());
}

TEST(ExprTest, Comparisons) {
  EXPECT_EQ(eval0(Expr::binary(BinOp::kLt, lit_l(1), lit_l(2))).as_long(), 1);
  EXPECT_EQ(eval0(Expr::binary(BinOp::kGe, lit_l(1), lit_l(2))).as_long(), 0);
  EXPECT_EQ(eval0(Expr::binary(BinOp::kEq, lit_s("a"), lit_s("a"))).as_long(),
            1);
  EXPECT_EQ(eval0(Expr::binary(BinOp::kNe, lit_s("a"), lit_s("b"))).as_long(),
            1);
}

TEST(ExprTest, ComparisonWithNullIsNullAndFalsy) {
  const Value v = eval0(Expr::binary(BinOp::kEq, lit_null(), lit_l(1)));
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(is_truthy(v));
}

TEST(ExprTest, LogicalShortCircuit) {
  // AND with falsy lhs never evaluates rhs — a null rhs is irrelevant.
  EXPECT_EQ(
      eval0(Expr::binary(BinOp::kAnd, lit_l(0), lit_null())).as_long(), 0);
  EXPECT_EQ(eval0(Expr::binary(BinOp::kOr, lit_l(1), lit_null())).as_long(),
            1);
  EXPECT_EQ(eval0(Expr::binary(BinOp::kAnd, lit_l(1), lit_l(1))).as_long(), 1);
  EXPECT_EQ(eval0(Expr::binary(BinOp::kOr, lit_l(0), lit_l(0))).as_long(), 0);
}

TEST(ExprTest, NotAndIsNull) {
  EXPECT_EQ(eval0(Expr::unary(UnOp::kNot, lit_l(0))).as_long(), 1);
  EXPECT_EQ(eval0(Expr::unary(UnOp::kNot, lit_l(7))).as_long(), 0);
  EXPECT_EQ(eval0(Expr::is_null(lit_null(), false)).as_long(), 1);
  EXPECT_EQ(eval0(Expr::is_null(lit_l(1), false)).as_long(), 0);
  EXPECT_EQ(eval0(Expr::is_null(lit_null(), true)).as_long(), 0);
}

TEST(ExprTest, ColumnReference) {
  const Tuple t({Value(std::int64_t{10}), Value("x")});
  EXPECT_EQ(eval_expr(*col(0), t).as_long(), 10);
  EXPECT_EQ(eval_expr(*col(1), t).as_string(), "x");
}

TEST(ExprTest, Trunc) {
  EXPECT_EQ(eval0(Expr::trunc(lit_d(3.9))).as_long(), 3);
  EXPECT_EQ(eval0(Expr::trunc(lit_d(-3.9))).as_long(), -3);
  EXPECT_EQ(eval0(Expr::trunc(lit_l(5))).as_long(), 5);
  EXPECT_TRUE(eval0(Expr::trunc(lit_null())).is_null());
}

// ---- aggregates ----

Tuple grouped(std::vector<std::vector<Value>> rows) {
  std::vector<Tuple> ts;
  for (auto& r : rows) ts.emplace_back(std::move(r));
  Tuple out;
  out.fields.push_back(Value(std::int64_t{1}));  // group key
  out.fields.push_back(
      Value(std::make_shared<const std::vector<Tuple>>(std::move(ts))));
  return out;
}

TEST(ExprTest, CountBag) {
  const Tuple g = grouped({{Value(std::int64_t{1})}, {Value(std::int64_t{2})}});
  EXPECT_EQ(eval_expr(*Expr::aggregate(AggFunc::kCount, 1, std::nullopt), g)
                .as_long(),
            2);
}

TEST(ExprTest, SumMinMaxAvg) {
  const Tuple g = grouped({{Value(std::int64_t{4})},
                           {Value(std::int64_t{1})},
                           {Value(std::int64_t{7})}});
  EXPECT_EQ(eval_expr(*Expr::aggregate(AggFunc::kSum, 1, 0), g).as_long(), 12);
  EXPECT_EQ(eval_expr(*Expr::aggregate(AggFunc::kMin, 1, 0), g).as_long(), 1);
  EXPECT_EQ(eval_expr(*Expr::aggregate(AggFunc::kMax, 1, 0), g).as_long(), 7);
  EXPECT_DOUBLE_EQ(eval_expr(*Expr::aggregate(AggFunc::kAvg, 1, 0), g)
                       .as_double(),
                   4.0);
}

TEST(ExprTest, AggregatesSkipNulls) {
  const Tuple g = grouped({{Value(std::int64_t{4})},
                           {Value::null()},
                           {Value(std::int64_t{2})}});
  EXPECT_EQ(eval_expr(*Expr::aggregate(AggFunc::kSum, 1, 0), g).as_long(), 6);
  EXPECT_DOUBLE_EQ(
      eval_expr(*Expr::aggregate(AggFunc::kAvg, 1, 0), g).as_double(), 3.0);
  // COUNT over the bag counts rows (Pig's COUNT(bag) counts tuples).
  EXPECT_EQ(eval_expr(*Expr::aggregate(AggFunc::kCount, 1, std::nullopt), g)
                .as_long(),
            3);
}

TEST(ExprTest, AggregateOverEmptyOrAllNullBagIsNull) {
  const Tuple g = grouped({{Value::null()}});
  EXPECT_TRUE(eval_expr(*Expr::aggregate(AggFunc::kSum, 1, 0), g).is_null());
  EXPECT_TRUE(eval_expr(*Expr::aggregate(AggFunc::kMin, 1, 0), g).is_null());
  EXPECT_TRUE(eval_expr(*Expr::aggregate(AggFunc::kAvg, 1, 0), g).is_null());
}

TEST(ExprTest, DoubleSumPromotes) {
  const Tuple g = grouped({{Value(1.5)}, {Value(std::int64_t{1})}});
  const Value v = eval_expr(*Expr::aggregate(AggFunc::kSum, 1, 0), g);
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.as_double(), 2.5);
}

TEST(ExprTest, AggregateOnNonBagThrows) {
  Tuple t({Value(std::int64_t{1}), Value(std::int64_t{2})});
  EXPECT_THROW(eval_expr(*Expr::aggregate(AggFunc::kCount, 1, std::nullopt), t),
               CheckError);
}

TEST(ExprTest, ContainsAggregate) {
  EXPECT_TRUE(Expr::aggregate(AggFunc::kCount, 1, std::nullopt)
                  ->contains_aggregate());
  EXPECT_TRUE(Expr::binary(BinOp::kAdd, lit_l(1),
                           Expr::aggregate(AggFunc::kSum, 1, 0))
                  ->contains_aggregate());
  EXPECT_FALSE(Expr::binary(BinOp::kAdd, lit_l(1), col(0))
                   ->contains_aggregate());
}

TEST(ExprTest, ResultTypes) {
  const Schema s = Schema::of({{"a", ValueType::kLong},
                               {"b", ValueType::kDouble}});
  EXPECT_EQ(result_type(*col(0), s), ValueType::kLong);
  EXPECT_EQ(result_type(*col(1), s), ValueType::kDouble);
  EXPECT_EQ(result_type(*Expr::binary(BinOp::kAdd, col(0), col(1)), s),
            ValueType::kDouble);
  EXPECT_EQ(result_type(*Expr::binary(BinOp::kLt, col(0), col(1)), s),
            ValueType::kLong);
  EXPECT_EQ(result_type(*Expr::trunc(col(1)), s), ValueType::kLong);
  EXPECT_EQ(result_type(*Expr::aggregate(AggFunc::kCount, 1, std::nullopt), s),
            ValueType::kLong);
  EXPECT_EQ(result_type(*Expr::aggregate(AggFunc::kAvg, 1, 0), s),
            ValueType::kDouble);
}

TEST(ExprTest, ToStringRendersReadably) {
  const ExprPtr e = Expr::binary(
      BinOp::kAnd, Expr::is_null(col(0), true),
      Expr::binary(BinOp::kGt, col(1), lit_l(5)));
  EXPECT_EQ(e->to_string(), "(c0 IS NOT NULL AND (c1 > 5))");
}

}  // namespace
}  // namespace clusterbft::dataflow
