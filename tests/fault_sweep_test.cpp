// Randomized fault-injection property sweep: across commission
// probabilities, fault counts, adversary flavours and scripts, a verified
// ClusterBFT result ALWAYS equals the reference interpreter's — the
// system's central integrity guarantee. (If verification gives up, that
// is reported honestly, but a verified-yet-wrong output is the one thing
// that must never happen.)
#include <gtest/gtest.h>

#include "baseline/presets.hpp"
#include "cluster/tracker.hpp"
#include "core/controller.hpp"
#include "protocol/seam.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"
#include "workloads/weather.hpp"

namespace clusterbft::core {
namespace {

using cluster::AdversaryPolicy;
using cluster::NodeId;
using cluster::TrackerConfig;

struct SweepParam {
  std::size_t f;
  std::size_t r;
  double commission_prob;
  bool lie_in_digest;
  std::uint64_t seed;
};

class FaultSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FaultSweep, VerifiedImpliesCorrect) {
  const SweepParam p = GetParam();
  Rng rng(p.seed);

  TrackerConfig cfg;
  cfg.num_nodes = 14;
  cfg.seed = p.seed;
  // p.f Byzantine nodes at random positions.
  std::set<NodeId> faulty;
  while (faulty.size() < p.f) {
    faulty.insert(rng.next_below(cfg.num_nodes));
  }
  for (NodeId n : faulty) {
    cfg.policies[n] = AdversaryPolicy{.commission_prob = p.commission_prob,
                                      .lie_in_digest = p.lie_in_digest};
  }

  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  cluster::ExecutionTracker tracker(sim, dfs, cfg);
  workloads::TwitterConfig tw;
  tw.num_edges = 1200;
  tw.num_users = 150;
  tw.seed = p.seed;
  const auto edges = workloads::generate_twitter_edges(tw);
  dfs.write("twitter/edges", edges);
  protocol::LoopbackSeam seam(tracker);
  ClusterBft controller(sim, dfs, seam.transport, seam.programs);

  const std::string script = workloads::twitter_follower_analysis();
  const auto res = controller.execute(
      baseline::cluster_bft(script, "sweep", p.f, p.r, 1));

  if (!res.verified) {
    // Allowed only when the adversary can actually prevent agreement;
    // with honest majority capacity the controller must succeed.
    GTEST_SKIP() << "gave up (acceptable under heavy faults)";
  }
  const auto plan = dataflow::parse_script(script);
  const auto golden =
      dataflow::interpret(plan, {{"twitter/edges", edges}});
  ASSERT_EQ(res.outputs.at("out/follower_counts").sorted_rows(),
            golden.at("out/follower_counts").sorted_rows())
      << "VERIFIED OUTPUT IS WRONG (integrity violation)";
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  std::uint64_t seed = 100;
  for (std::size_t f : {1u, 2u}) {
    for (std::size_t r : {f + 1, 2 * f + 1}) {
      for (double cp : {0.3, 1.0}) {
        for (bool lie : {false, true}) {
          out.push_back({f, r, cp, lie, seed++});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FaultSweep, ::testing::ValuesIn(sweep_params()),
    [](const ::testing::TestParamInfo<SweepParam>& ti) {
      const SweepParam& p = ti.param;
      return "f" + std::to_string(p.f) + "_r" + std::to_string(p.r) + "_p" +
             std::to_string(static_cast<int>(p.commission_prob * 10)) +
             (p.lie_in_digest ? "_lie" : "_data") + "_s" +
             std::to_string(p.seed);
    });

TEST(FaultSweepTest, WeatherChainUnderTwoFaultFlavours) {
  // A two-job chain with one data-corrupting and one digest-lying node.
  TrackerConfig cfg;
  cfg.num_nodes = 14;
  cfg.policies[0] = AdversaryPolicy{.commission_prob = 0.7};
  cfg.policies[5] =
      AdversaryPolicy{.commission_prob = 0.7, .lie_in_digest = true};
  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  cluster::ExecutionTracker tracker(sim, dfs, cfg);
  workloads::WeatherConfig w;
  w.num_stations = 120;
  w.readings_per_station = 8;
  const auto readings = workloads::generate_weather(w);
  dfs.write("weather/gsod", readings);
  protocol::LoopbackSeam seam(tracker);
  ClusterBft controller(sim, dfs, seam.transport, seam.programs);

  const std::string script = workloads::weather_average_analysis();
  const auto res = controller.execute(
      baseline::cluster_bft(script, "two", 2, 3, 2));
  ASSERT_TRUE(res.verified);
  const auto plan = dataflow::parse_script(script);
  const auto golden =
      dataflow::interpret(plan, {{"weather/gsod", readings}});
  EXPECT_EQ(res.outputs.at("out/weather_hist").sorted_rows(),
            golden.at("out/weather_hist").sorted_rows());
}

}  // namespace
}  // namespace clusterbft::core
