// Tests that the distributed task runtime computes the same function as
// the reference interpreter, partition by partition, and that its digests
// behave as the verifier requires.
#include "mapreduce/task.hpp"

#include <gtest/gtest.h>

#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"
#include "mapreduce/compiler.hpp"
#include "mapreduce/dfs.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"

namespace clusterbft::mapreduce {
namespace {

using dataflow::LogicalPlan;
using dataflow::Relation;
using dataflow::Tuple;
using dataflow::parse_script;

struct Compiled {
  LogicalPlan plan;
  JobDag dag;
};

Compiled compile_with_vps(const std::string& script,
                          std::vector<VerificationPoint> vps = {}) {
  Compiled c{parse_script(script), {}};
  CompileOptions opts;
  opts.sid_prefix = "t";
  c.dag = compile(c.plan, vps, opts);
  return c;
}

/// Run one job fully in-process: all map tasks over DFS splits, shuffle,
/// all reduce tasks; returns the concatenated output.
Relation run_job(const LogicalPlan& plan, const MRJobSpec& job, Dfs& dfs,
                 std::vector<DigestReport>* digests = nullptr) {
  std::vector<std::vector<Relation>> shuffle(job.num_reducers);
  int max_tag = 0;
  for (const MapBranch& b : job.branches) max_tag = std::max(max_tag, b.tag);
  for (auto& p : shuffle) p.resize(static_cast<std::size_t>(max_tag) + 1);

  Relation direct;
  bool direct_init = false;
  for (std::size_t bi = 0; bi < job.branches.size(); ++bi) {
    const MapBranch& b = job.branches[bi];
    for (std::size_t s = 0; s < dfs.num_splits(b.input_path); ++s) {
      auto res = run_map_task(plan, job, bi, s, dfs.read_split(b.input_path, s));
      if (digests) {
        digests->insert(digests->end(), res.digests.begin(),
                        res.digests.end());
      }
      if (job.map_only()) {
        if (!direct_init) {
          direct = Relation(res.direct_output.schema());
          direct_init = true;
        }
        for (Tuple& t : res.direct_output.rows()) direct.add(std::move(t));
      } else {
        for (std::size_t p = 0; p < res.partitions.size(); ++p) {
          auto& bucket = shuffle[p][static_cast<std::size_t>(b.tag)];
          if (bucket.schema().size() == 0) {
            bucket = Relation(res.partitions[p].schema());
          }
          for (Tuple& t : res.partitions[p].rows()) bucket.add(std::move(t));
        }
      }
    }
  }
  if (job.map_only()) return direct;

  Relation out;
  bool out_init = false;
  for (std::size_t p = 0; p < job.num_reducers; ++p) {
    for (auto& bucket : shuffle[p]) {
      if (bucket.schema().size() == 0) {
        // Give schema-less (empty) buckets the map-side schema of tag 0.
        bucket = Relation(plan.node(job.branches[0].map_ops.empty()
                                        ? job.branches[0].source_vertex
                                        : job.branches[0].map_ops.back())
                              .schema);
      }
    }
    auto res = run_reduce_task(plan, job, p, shuffle[p]);
    if (digests) {
      digests->insert(digests->end(), res.digests.begin(), res.digests.end());
    }
    if (!out_init) {
      out = Relation(res.output.schema());
      out_init = true;
    }
    for (Tuple& t : res.output.rows()) out.add(std::move(t));
  }
  return out;
}

/// Execute the whole DAG through the task runtime.
std::map<std::string, Relation> run_dag(const Compiled& c, Dfs& dfs) {
  std::map<std::string, Relation> stores;
  for (const MRJobSpec& job : c.dag.jobs) {
    Relation out = run_job(c.plan, job, dfs);
    dfs.write(job.output_path, out);
    if (job.is_final_store) stores[job.output_path] = std::move(out);
  }
  return stores;
}

TEST(TaskTest, ShufflePartitionIsDeterministicAndInRange) {
  dataflow::OpNode group;
  group.kind = dataflow::OpKind::kGroup;
  group.group_keys = {0};
  for (std::int64_t k = 0; k < 100; ++k) {
    const Tuple t({dataflow::Value(k)});
    const std::size_t p = shuffle_partition(group, 0, t, 7);
    EXPECT_LT(p, 7u);
    EXPECT_EQ(p, shuffle_partition(group, 0, t, 7));
  }
}

TEST(TaskTest, OrderAlwaysPartitionZero) {
  dataflow::OpNode order;
  order.kind = dataflow::OpKind::kOrder;
  EXPECT_EQ(shuffle_partition(order, 0, Tuple({dataflow::Value("x")}), 1), 0u);
}

TEST(TaskTest, EveryScriptMatchesInterpreter) {
  workloads::TwitterConfig tw;
  tw.num_edges = 3000;
  tw.num_users = 500;
  const Relation edges = workloads::generate_twitter_edges(tw);

  for (const std::string& script :
       {workloads::twitter_follower_analysis(),
        workloads::twitter_two_hop_analysis()}) {
    Dfs dfs(4096);
    dfs.write("twitter/edges", edges);
    const Compiled c = compile_with_vps(script);
    const auto distributed = run_dag(c, dfs);
    const auto golden =
        dataflow::interpret(c.plan, {{"twitter/edges", edges}});
    ASSERT_EQ(distributed.size(), golden.size());
    for (const auto& [path, rel] : golden) {
      EXPECT_EQ(distributed.at(path).sorted_rows(), rel.sorted_rows())
          << path << " in " << script.substr(0, 30);
    }
  }
}

TEST(TaskTest, ReplicaDigestsIdenticalRegardlessOfShuffleOrder) {
  workloads::TwitterConfig tw;
  tw.num_edges = 2000;
  const Relation edges = workloads::generate_twitter_edges(tw);
  Dfs dfs(2048);
  dfs.write("twitter/edges", edges);

  const Compiled c0 = compile_with_vps(workloads::twitter_follower_analysis());
  // Place a verification point on the job's output vertex.
  Compiled c = compile_with_vps(workloads::twitter_follower_analysis(),
                                {{c0.dag.jobs[0].output_vertex, 0}});

  std::vector<DigestReport> d1, d2;
  run_job(c.plan, c.dag.jobs[0], dfs, &d1);
  run_job(c.plan, c.dag.jobs[0], dfs, &d2);
  ASSERT_FALSE(d1.empty());
  ASSERT_EQ(d1.size(), d2.size());
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1[i].key, d2[i].key);
    EXPECT_EQ(d1[i].digest, d2[i].digest);
  }
}

TEST(TaskTest, CorruptInputChangesDigest) {
  workloads::TwitterConfig tw;
  tw.num_edges = 500;
  Relation edges = workloads::generate_twitter_edges(tw);
  Dfs honest(1 << 20), corrupt(1 << 20);
  honest.write("twitter/edges", edges);
  edges.rows()[7].at(0) = dataflow::Value(std::int64_t{999999});
  corrupt.write("twitter/edges", edges);

  const Compiled c0 = compile_with_vps(workloads::twitter_follower_analysis());
  Compiled c = compile_with_vps(workloads::twitter_follower_analysis(),
                                {{c0.dag.jobs[0].output_vertex, 0}});
  std::vector<DigestReport> dh, dc;
  run_job(c.plan, c.dag.jobs[0], honest, &dh);
  run_job(c.plan, c.dag.jobs[0], corrupt, &dc);
  bool any_differs = false;
  ASSERT_EQ(dh.size(), dc.size());
  for (std::size_t i = 0; i < dh.size(); ++i) {
    if (!(dh[i].digest == dc[i].digest)) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(TaskTest, ChunkedDigestsLocaliseCorruption) {
  // With d = 50 records per digest, corrupting one record flips only the
  // digests of the chunk(s) containing it — the approximation-accuracy
  // mechanism of §6.4.
  workloads::TwitterConfig tw;
  tw.num_edges = 400;
  tw.malformed_rate = 0;
  Relation edges = workloads::generate_twitter_edges(tw);
  Dfs honest(1 << 20), corrupt(1 << 20);
  honest.write("twitter/edges", edges);
  edges.rows()[5].at(0) = dataflow::Value(std::int64_t{424242});
  corrupt.write("twitter/edges", edges);

  const std::string script =
      "a = LOAD 'twitter/edges' AS (user:long, follower:long);\n"
      "STORE a INTO 'out/copy';\n";
  const Compiled c0 = compile_with_vps(script);
  Compiled c = compile_with_vps(script, {{0, 50}});

  std::vector<DigestReport> dh, dc;
  run_job(c.plan, c.dag.jobs[0], honest, &dh);
  run_job(c.plan, c.dag.jobs[0], corrupt, &dc);
  ASSERT_EQ(dh.size(), dc.size());
  ASSERT_GT(dh.size(), 2u);  // multiple chunks
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < dh.size(); ++i) {
    if (!(dh[i].digest == dc[i].digest)) ++mismatches;
  }
  EXPECT_EQ(mismatches, 1u);
}

TEST(TaskTest, MetricsAccountBytesAndRecords) {
  workloads::TwitterConfig tw;
  tw.num_edges = 200;
  const Relation edges = workloads::generate_twitter_edges(tw);
  Dfs dfs(1 << 20);
  dfs.write("twitter/edges", edges);
  const Compiled c = compile_with_vps(workloads::twitter_follower_analysis());
  const MRJobSpec& job = c.dag.jobs[0];
  auto res = run_map_task(c.plan, job, 0, 0, dfs.read_split("twitter/edges", 0));
  EXPECT_EQ(res.metrics.records_in, 200u);
  EXPECT_GT(res.metrics.input_bytes, 0u);
  EXPECT_GT(res.metrics.output_bytes, 0u);
  EXPECT_EQ(res.metrics.digested_bytes, 0u);  // no VPs requested
  std::size_t shuffled = 0;
  for (const Relation& p : res.partitions) shuffled += p.size();
  EXPECT_EQ(shuffled, res.metrics.records_out);
}

}  // namespace
}  // namespace clusterbft::mapreduce
