// Parity tests for the runtime-dispatched SHA-256 backends: every
// available kernel (SHA-NI, AVX2 multi-buffer) must be byte-identical
// to the reference scalar path on the FIPS 180-4 vectors and on 10k
// random-length fuzz messages. This is the invariant the whole raw-speed
// pass rests on — the verifier's digests must not depend on which host
// the replica ran on. Runs under the asan-ubsan preset too, where any
// out-of-bounds lane read in the SIMD paths is fatal.
#include "crypto/sha256_dispatch.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"

namespace clusterbft::crypto {
namespace {

/// Run `fn` with the process-wide backend forced to `b`, restoring the
/// previous backend even on assertion failure.
template <typename Fn>
void with_backend(Sha256Backend b, Fn&& fn) {
  const Sha256Backend prev = sha256_backend();
  force_sha256_backend(b);
  fn();
  force_sha256_backend(prev);
}

std::vector<Sha256Backend> available_backends() {
  std::vector<Sha256Backend> out = {Sha256Backend::kScalar};
  if (sha256_backend_available(Sha256Backend::kShani)) {
    out.push_back(Sha256Backend::kShani);
  }
  if (sha256_backend_available(Sha256Backend::kAvx2)) {
    out.push_back(Sha256Backend::kAvx2);
  }
  return out;
}

// FIPS 180-4 / NIST CAVP known-answer vectors.
struct Kat {
  const char* msg;
  const char* hex;
};
constexpr Kat kKats[] = {
    {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
    {"abc",
     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
    {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
    {"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
     "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
     "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"},
};

TEST(CryptoDispatchTest, FipsVectorsOnEveryAvailableBackend) {
  for (Sha256Backend b : available_backends()) {
    with_backend(b, [&] {
      for (const Kat& kat : kKats) {
        EXPECT_EQ(to_hex(Sha256::hash(kat.msg)), kat.hex)
            << "backend " << to_string(b) << " msg \"" << kat.msg << "\"";
      }
      // The classic million-a vector exercises the multi-block bulk path.
      EXPECT_EQ(
          to_hex(Sha256::hash(std::string(1000000, 'a'))),
          "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")
          << "backend " << to_string(b);
    });
  }
}

TEST(CryptoDispatchTest, RandomLengthFuzzMatchesScalarByteForByte) {
  // 10k random-length messages (biased toward block-boundary lengths),
  // hashed once on the scalar reference and once per accelerated
  // backend; any schedule or padding bug shows up as a mismatch.
  constexpr int kIters = 10000;
  Rng rng(4242);
  std::vector<std::string> msgs;
  msgs.reserve(kIters);
  for (int i = 0; i < kIters; ++i) {
    std::size_t len = rng.next_below(512);
    if (rng.chance(0.25)) {
      // Snap near the 55/56/63/64 padding boundaries.
      len = 48 + rng.next_below(32);
    }
    std::string s;
    s.reserve(len);
    for (std::size_t k = 0; k < len; ++k) {
      s.push_back(static_cast<char>(rng.next_below(256)));
    }
    msgs.push_back(std::move(s));
  }

  std::vector<Sha256::Digest> want(msgs.size());
  with_backend(Sha256Backend::kScalar, [&] {
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      want[i] = Sha256::hash(msgs[i]);
    }
  });

  for (Sha256Backend b : available_backends()) {
    if (b == Sha256Backend::kScalar) continue;
    with_backend(b, [&] {
      for (std::size_t i = 0; i < msgs.size(); ++i) {
        ASSERT_EQ(to_hex(Sha256::hash(msgs[i])), to_hex(want[i]))
            << "backend " << to_string(b) << " msg " << i << " len "
            << msgs[i].size();
      }
    });
  }
}

TEST(CryptoDispatchTest, Sha256BatchMatchesPerMessageHashing) {
  // sha256_batch is the verifier's multi-buffer prefold entry point; it
  // must agree with one-at-a-time hashing on every backend, including
  // ragged group sizes (1..17 crosses the 8-lane AVX2 group boundary).
  Rng rng(99);
  for (std::size_t n = 1; n <= 17; ++n) {
    std::vector<std::string> msgs(n);
    std::vector<std::string_view> views(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t len = rng.next_below(300);
      msgs[i].reserve(len);
      for (std::size_t k = 0; k < len; ++k) {
        msgs[i].push_back(static_cast<char>(rng.next_below(256)));
      }
      views[i] = msgs[i];
    }
    for (Sha256Backend b : available_backends()) {
      with_backend(b, [&] {
        std::vector<Sha256::Digest> got(n);
        sha256_batch(views.data(), got.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(to_hex(got[i]), to_hex(Sha256::hash(msgs[i])))
              << "backend " << to_string(b) << " n " << n << " i " << i;
        }
      });
    }
  }
}

TEST(CryptoDispatchTest, StreamingChunksMatchOneShotOnEveryBackend) {
  // The bulk path kicks in for >= 64-byte spans; feed the same message
  // through ragged update() chunks and the one-shot API.
  const std::string msg = [] {
    Rng rng(7);
    std::string s;
    for (int i = 0; i < 1500; ++i) {
      s.push_back(static_cast<char>(rng.next_below(256)));
    }
    return s;
  }();
  for (Sha256Backend b : available_backends()) {
    with_backend(b, [&] {
      const auto oneshot = Sha256::hash(msg);
      Sha256 h;
      std::size_t pos = 0;
      const std::size_t chunks[] = {1, 63, 64, 65, 200, 511, 1};
      for (std::size_t c : chunks) {
        const std::size_t take = std::min(c, msg.size() - pos);
        h.update(msg.data() + pos, take);
        pos += take;
      }
      h.update(msg.data() + pos, msg.size() - pos);
      EXPECT_EQ(to_hex(h.finalize()), to_hex(oneshot))
          << "backend " << to_string(b);
    });
  }
}

TEST(CryptoDispatchTest, ForcingUnavailableBackendThrows) {
  for (Sha256Backend b : {Sha256Backend::kShani, Sha256Backend::kAvx2}) {
    if (sha256_backend_available(b)) continue;
    EXPECT_THROW(force_sha256_backend(b), CheckError);
  }
  SUCCEED();  // on full-featured hosts there is nothing to throw on
}

TEST(CryptoDispatchTest, BackendNamesRoundTrip) {
  EXPECT_STREQ(to_string(Sha256Backend::kScalar), "scalar");
  EXPECT_STREQ(to_string(Sha256Backend::kShani), "shani");
  EXPECT_STREQ(to_string(Sha256Backend::kAvx2), "avx2");
  EXPECT_TRUE(sha256_backend_available(Sha256Backend::kScalar));
}

}  // namespace
}  // namespace clusterbft::crypto
