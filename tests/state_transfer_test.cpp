// PBFT state transfer: a replica that was partitioned away falls behind
// the stable checkpoint (its missing slots are garbage-collected
// cluster-wide), then catches up by fetching f+1 matching state
// snapshots on reconnect.
#include <gtest/gtest.h>

#include "bftsmr/system.hpp"

namespace clusterbft::bftsmr {
namespace {

using cluster::EventSim;

TEST(StateTransferTest, DisconnectedReplicaCatchesUp) {
  EventSim sim;
  SystemConfig cfg;
  cfg.f = 1;
  cfg.seed = 3;
  cfg.checkpoint_interval = 8;
  BftSystem sys(sim, cfg, [] { return std::make_unique<LogService>(); });

  sys.disconnect(3);
  for (int i = 0; i < 40; ++i) {
    sys.submit("op" + std::to_string(i), {});
  }
  sim.run();
  EXPECT_EQ(sys.completed_requests(), 40u);
  EXPECT_EQ(sys.replica(3).last_executed(), 0u);  // partitioned away

  sys.reconnect(3);
  for (int i = 40; i < 45; ++i) {
    sys.submit("op" + std::to_string(i), {});
  }
  sim.run();
  EXPECT_EQ(sys.completed_requests(), 45u);

  // The reconnected replica transferred state and kept up from there.
  EXPECT_GE(sys.replica(3).last_executed(), 40u);
  EXPECT_GE(sys.replica(3).executed_ops().size(), 40u);
  // Logs of all replicas are prefix-consistent.
  const auto& ref = sys.replica(0).executed_ops();
  const auto& caught_up = sys.replica(3).executed_ops();
  for (std::size_t i = 0; i < std::min(ref.size(), caught_up.size()); ++i) {
    EXPECT_EQ(ref[i], caught_up[i]) << "divergence at " << i;
  }
}

TEST(StateTransferTest, ServiceSnapshotRoundTrip) {
  LogService a;
  a.apply("x");
  a.apply("y");
  LogService b;
  b.restore(a.snapshot());
  EXPECT_EQ(b.state_fingerprint(), a.state_fingerprint());
  // Continued execution stays aligned.
  EXPECT_EQ(a.apply("z"), b.apply("z"));
}

TEST(StateTransferTest, ShortGapCatchesUpWithoutTransfer) {
  // A briefly-partitioned replica whose gap is still within the window
  // catches up through normal protocol messages (view-change
  // re-affirmation), no snapshot needed.
  EventSim sim;
  SystemConfig cfg;
  cfg.f = 1;
  cfg.seed = 4;
  cfg.checkpoint_interval = 64;  // no GC during this test
  BftSystem sys(sim, cfg, [] { return std::make_unique<LogService>(); });
  sys.disconnect(2);
  for (int i = 0; i < 5; ++i) sys.submit("op" + std::to_string(i), {});
  sim.run();
  sys.reconnect(2);
  for (int i = 5; i < 10; ++i) sys.submit("op" + std::to_string(i), {});
  sim.run();
  EXPECT_EQ(sys.completed_requests(), 10u);
  EXPECT_GE(sys.replica(2).last_executed(), 5u);
}

}  // namespace
}  // namespace clusterbft::bftsmr
