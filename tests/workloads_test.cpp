#include <gtest/gtest.h>

#include <set>

#include "workloads/airline.hpp"
#include "workloads/twitter.hpp"
#include "workloads/weather.hpp"

namespace clusterbft::workloads {
namespace {

using dataflow::Tuple;
using dataflow::ValueType;

TEST(TwitterGenTest, SchemaAndSize) {
  TwitterConfig cfg;
  cfg.num_edges = 1000;
  const auto rel = generate_twitter_edges(cfg);
  EXPECT_EQ(rel.size(), 1000u);
  EXPECT_EQ(rel.schema().at(0).name, "user");
  EXPECT_EQ(rel.schema().at(1).name, "follower");
}

TEST(TwitterGenTest, DeterministicPerSeed) {
  TwitterConfig cfg;
  cfg.num_edges = 500;
  EXPECT_EQ(generate_twitter_edges(cfg).rows(),
            generate_twitter_edges(cfg).rows());
  TwitterConfig other = cfg;
  other.seed = 43;
  EXPECT_NE(generate_twitter_edges(cfg).rows(),
            generate_twitter_edges(other).rows());
}

TEST(TwitterGenTest, MalformedRateApproximatelyRespected) {
  TwitterConfig cfg;
  cfg.num_edges = 10000;
  cfg.malformed_rate = 0.1;
  const auto rel = generate_twitter_edges(cfg);
  std::size_t nulls = 0;
  for (const Tuple& t : rel.rows()) nulls += t.at(1).is_null();
  EXPECT_NEAR(static_cast<double>(nulls) / 10000.0, 0.1, 0.02);
}

TEST(TwitterGenTest, PopularityIsSkewed) {
  TwitterConfig cfg;
  cfg.num_edges = 10000;
  cfg.num_users = 1000;
  const auto rel = generate_twitter_edges(cfg);
  std::map<std::int64_t, std::size_t> counts;
  for (const Tuple& t : rel.rows()) ++counts[t.at(0).as_long()];
  // User 1 (rank 1) has far more followers than the median user.
  EXPECT_GT(counts[1], 1000u);
}

TEST(AirlineGenTest, SchemaAndHubs) {
  AirlineConfig cfg;
  cfg.num_flights = 5000;
  const auto rel = generate_flights(cfg);
  EXPECT_EQ(rel.size(), 5000u);
  EXPECT_EQ(rel.schema().size(), 6u);
  std::map<std::string, std::size_t> origins;
  std::size_t cancelled = 0;
  for (const Tuple& t : rel.rows()) {
    if (t.at(2).is_null()) {
      ++cancelled;
      continue;
    }
    ++origins[t.at(2).as_string()];
    // Origin and destination always differ.
    EXPECT_NE(t.at(2).as_string(), t.at(3).as_string());
  }
  EXPECT_GT(cancelled, 0u);
  // Hub concentration: the busiest airport has many times the median.
  std::size_t busiest = 0;
  for (const auto& [code, n] : origins) busiest = std::max(busiest, n);
  EXPECT_GT(busiest, 5000u / cfg.num_airports * 3);
}

TEST(AirlineGenTest, Deterministic) {
  AirlineConfig cfg;
  cfg.num_flights = 300;
  EXPECT_EQ(generate_flights(cfg).rows(), generate_flights(cfg).rows());
}

TEST(WeatherGenTest, SchemaStationsAndMissing) {
  WeatherConfig cfg;
  cfg.num_stations = 50;
  cfg.readings_per_station = 20;
  const auto rel = generate_weather(cfg);
  EXPECT_EQ(rel.size(), 1000u);
  std::set<std::int64_t> stations;
  std::size_t missing = 0;
  for (const Tuple& t : rel.rows()) {
    stations.insert(t.at(0).as_long());
    if (t.at(2).is_null()) {
      ++missing;
    } else {
      const double temp = t.at(2).as_double();
      EXPECT_GT(temp, -60.0);
      EXPECT_LT(temp, 70.0);
    }
  }
  EXPECT_EQ(stations.size(), 50u);
  EXPECT_GT(missing, 0u);
}

TEST(WeatherGenTest, Deterministic) {
  WeatherConfig cfg;
  cfg.num_stations = 10;
  EXPECT_EQ(generate_weather(cfg).rows(), generate_weather(cfg).rows());
}

}  // namespace
}  // namespace clusterbft::workloads
