#include "mapreduce/dfs.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace clusterbft::mapreduce {
namespace {

using dataflow::Relation;
using dataflow::Schema;
using dataflow::Tuple;
using dataflow::Value;
using dataflow::ValueType;

Relation numbers(std::int64_t n) {
  Relation r(Schema::of({{"x", ValueType::kLong}}));
  for (std::int64_t i = 0; i < n; ++i) r.add(Tuple({Value(i)}));
  return r;
}

TEST(DfsTest, WriteReadRoundTrip) {
  Dfs dfs;
  dfs.write("a", numbers(10));
  EXPECT_TRUE(dfs.exists("a"));
  EXPECT_FALSE(dfs.exists("b"));
  EXPECT_EQ(dfs.read("a").size(), 10u);
}

TEST(DfsTest, ReadMissingThrows) {
  Dfs dfs;
  EXPECT_THROW(dfs.read("nope"), CheckError);
  EXPECT_THROW(dfs.num_splits("nope"), CheckError);
}

TEST(DfsTest, OverwriteReplaces) {
  Dfs dfs;
  dfs.write("a", numbers(10));
  dfs.write("a", numbers(3));
  EXPECT_EQ(dfs.read("a").size(), 3u);
}

TEST(DfsTest, RemoveDeletes) {
  Dfs dfs;
  dfs.write("a", numbers(1));
  dfs.remove("a");
  EXPECT_FALSE(dfs.exists("a"));
}

TEST(DfsTest, SplitsCoverAllRowsExactlyOnce) {
  Dfs dfs(/*block_size=*/64);  // tiny blocks force many splits
  dfs.write("a", numbers(100));
  const std::size_t n = dfs.num_splits("a");
  EXPECT_GT(n, 1u);
  std::size_t total = 0;
  std::int64_t next_expected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Relation split = dfs.read_split("a", i);
    total += split.size();
    for (const Tuple& t : split.rows()) {
      EXPECT_EQ(t.at(0).as_long(), next_expected++);
    }
  }
  EXPECT_EQ(total, 100u);
}

TEST(DfsTest, SplitOutOfRangeThrows) {
  Dfs dfs;
  dfs.write("a", numbers(5));
  EXPECT_THROW(dfs.read_split("a", dfs.num_splits("a")), CheckError);
}

TEST(DfsTest, EmptyFileHasOneEmptySplit) {
  Dfs dfs;
  dfs.write("a", numbers(0));
  EXPECT_EQ(dfs.num_splits("a"), 1u);
  EXPECT_EQ(dfs.read_split("a", 0).size(), 0u);
}

TEST(DfsTest, SplitsAreDeterministic) {
  Dfs d1(256), d2(256);
  d1.write("a", numbers(500));
  d2.write("a", numbers(500));
  ASSERT_EQ(d1.num_splits("a"), d2.num_splits("a"));
  for (std::size_t i = 0; i < d1.num_splits("a"); ++i) {
    EXPECT_EQ(d1.read_split("a", i).rows(), d2.read_split("a", i).rows());
  }
}

TEST(DfsTest, ByteAccounting) {
  Dfs dfs;
  const Relation r = numbers(10);
  const std::uint64_t bytes = r.byte_size();
  dfs.write("a", r);
  EXPECT_EQ(dfs.metrics().bytes_written, bytes);
  dfs.read("a");
  EXPECT_EQ(dfs.metrics().bytes_read, bytes);
  EXPECT_EQ(dfs.size_of("a"), bytes);
  dfs.reset_metrics();
  EXPECT_EQ(dfs.metrics().bytes_read, 0u);
}

TEST(DfsTest, ListReturnsAllPaths) {
  Dfs dfs;
  dfs.write("b", numbers(1));
  dfs.write("a", numbers(1));
  const auto paths = dfs.list();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "a");  // map order
  EXPECT_EQ(paths[1], "b");
}

}  // namespace
}  // namespace clusterbft::mapreduce
