// Whole-system determinism: identical seeds and configuration must yield
// bit-identical results — metrics, outputs, suspects, audit timing. This
// is the foundation replica digest comparison, the benchmarks, and every
// other test stand on.
#include <gtest/gtest.h>

#include "baseline/presets.hpp"
#include "cluster/tracker.hpp"
#include "core/controller.hpp"
#include "sim/isolation_sim.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"

namespace clusterbft {
namespace {

core::ScriptResult run_world(std::uint64_t seed) {
  cluster::EventSim sim;
  mapreduce::Dfs dfs(8192);
  cluster::TrackerConfig cfg;
  cfg.num_nodes = 10;
  cfg.seed = seed;
  cfg.policies[2] = cluster::AdversaryPolicy{.commission_prob = 0.6};
  cluster::ExecutionTracker tracker(sim, dfs, cfg);
  workloads::TwitterConfig tw;
  tw.num_edges = 1000;
  tw.num_users = 150;
  dfs.write("twitter/edges", workloads::generate_twitter_edges(tw));
  core::ClusterBft controller(sim, dfs, tracker);
  return controller.execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "det", 1, 2, 1));
}

TEST(DeterminismTest, IdenticalSeedsIdenticalRuns) {
  const auto a = run_world(7);
  const auto b = run_world(7);
  EXPECT_EQ(a.verified, b.verified);
  EXPECT_DOUBLE_EQ(a.metrics.latency_s, b.metrics.latency_s);
  EXPECT_DOUBLE_EQ(a.metrics.cpu_seconds, b.metrics.cpu_seconds);
  EXPECT_EQ(a.metrics.file_read, b.metrics.file_read);
  EXPECT_EQ(a.metrics.hdfs_write, b.metrics.hdfs_write);
  EXPECT_EQ(a.metrics.runs, b.metrics.runs);
  EXPECT_EQ(a.metrics.digest_reports, b.metrics.digest_reports);
  EXPECT_EQ(a.suspects, b.suspects);
  EXPECT_EQ(a.commission_faults_seen, b.commission_faults_seen);
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (const auto& [path, rel] : a.outputs) {
    EXPECT_EQ(rel.rows(), b.outputs.at(path).rows()) << path;
  }
}

TEST(DeterminismTest, DifferentSeedsDifferentSchedules) {
  const auto a = run_world(7);
  const auto b = run_world(8);
  // The data is the same (workload seed fixed) so outputs agree, but the
  // adversary coin flips and thus the cost profile differ.
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  const bool identical_metrics =
      a.metrics.cpu_seconds == b.metrics.cpu_seconds &&
      a.metrics.runs == b.metrics.runs &&
      a.commission_faults_seen == b.commission_faults_seen;
  EXPECT_FALSE(identical_metrics);
}

TEST(DeterminismTest, IsolationSimulatorBitStable) {
  sim::IsolationSimConfig cfg;
  cfg.f = 2;
  cfg.replicas = 7;
  cfg.commission_prob = 0.4;
  cfg.seed = 99;
  const auto a = sim::run_isolation_sim(cfg);
  const auto b = sim::run_isolation_sim(cfg);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.final_suspects, b.final_suspects);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].low, b.timeline[i].low);
    EXPECT_EQ(a.timeline[i].high, b.timeline[i].high);
    EXPECT_EQ(a.timeline[i].analyzer_suspects,
              b.timeline[i].analyzer_suspects);
  }
}

}  // namespace
}  // namespace clusterbft
