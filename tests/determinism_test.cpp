// Whole-system determinism: identical seeds and configuration must yield
// bit-identical results — metrics, outputs, suspects, audit timing. This
// is the foundation replica digest comparison, the benchmarks, and every
// other test stand on.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "baseline/presets.hpp"
#include "cluster/tracker.hpp"
#include "common/rng.hpp"
#include "core/controller.hpp"
#include "protocol/seam.hpp"
#include "core/graph_analyzer.hpp"
#include "crypto/digest.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"
#include "mapreduce/compiler.hpp"
#include "mapreduce/local_runner.hpp"
#include "random_script.hpp"
#include "sim/isolation_sim.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"

namespace clusterbft {
namespace {

core::ScriptResult run_world(std::uint64_t seed) {
  cluster::EventSim sim;
  mapreduce::Dfs dfs(8192);
  cluster::TrackerConfig cfg;
  cfg.num_nodes = 10;
  cfg.seed = seed;
  cfg.policies[2] = cluster::AdversaryPolicy{.commission_prob = 0.6};
  cluster::ExecutionTracker tracker(sim, dfs, cfg);
  workloads::TwitterConfig tw;
  tw.num_edges = 1000;
  tw.num_users = 150;
  dfs.write("twitter/edges", workloads::generate_twitter_edges(tw));
  protocol::LoopbackSeam seam(tracker);
  core::ClusterBft controller(sim, dfs, seam.transport, seam.programs);
  return controller.execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "det", 1, 2, 1));
}

TEST(DeterminismTest, IdenticalSeedsIdenticalRuns) {
  const auto a = run_world(7);
  const auto b = run_world(7);
  EXPECT_EQ(a.verified, b.verified);
  EXPECT_DOUBLE_EQ(a.metrics.latency_s, b.metrics.latency_s);
  EXPECT_DOUBLE_EQ(a.metrics.cpu_seconds, b.metrics.cpu_seconds);
  EXPECT_EQ(a.metrics.file_read, b.metrics.file_read);
  EXPECT_EQ(a.metrics.hdfs_write, b.metrics.hdfs_write);
  EXPECT_EQ(a.metrics.runs, b.metrics.runs);
  EXPECT_EQ(a.metrics.digest_reports, b.metrics.digest_reports);
  EXPECT_EQ(a.suspects, b.suspects);
  EXPECT_EQ(a.commission_faults_seen, b.commission_faults_seen);
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (const auto& [path, rel] : a.outputs) {
    EXPECT_EQ(rel.rows(), b.outputs.at(path).rows()) << path;
  }
}

TEST(DeterminismTest, DifferentSeedsDifferentSchedules) {
  const auto a = run_world(7);
  const auto b = run_world(8);
  // The data is the same (workload seed fixed) so outputs agree, but the
  // adversary coin flips and thus the cost profile differ.
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  const bool identical_metrics =
      a.metrics.cpu_seconds == b.metrics.cpu_seconds &&
      a.metrics.runs == b.metrics.runs &&
      a.commission_faults_seen == b.commission_faults_seen;
  EXPECT_FALSE(identical_metrics);
}

/// Digest a relation's row stream the way a verification point would:
/// canonical tuple serialisation folded through the chunked digester.
std::vector<crypto::ChunkDigest> digest_relation(
    const dataflow::Relation& rel, std::uint64_t records_per_digest) {
  crypto::ChunkedDigester d(records_per_digest);
  for (const auto& t : rel.rows()) d.add_record(dataflow::serialize_tuple(t));
  return d.finish();
}

/// One full pass for `seed`: random plan, marker-function verification
/// points, MR compilation, in-process DAG execution. Returns the digest
/// stream plus the interpreter-side digests of every output.
struct DigestPass {
  std::vector<mapreduce::DigestReport> mr_digests;
  std::vector<crypto::ChunkDigest> interp_digests;
  std::map<std::string, dataflow::Relation> mr_outputs;
};

DigestPass digest_pass(std::uint64_t seed) {
  Rng rng(seed);
  const dataflow::Relation input = testgen::random_table(rng, 250);
  const std::string script = testgen::random_script(rng);

  const auto plan = dataflow::parse_script(script);
  const auto ratios =
      core::compute_input_ratios(plan, {{"ta", input.byte_size()}});
  const auto marks = core::mark_verification_points(
      plan, ratios, 2, core::AdversaryModel::kWeak);
  std::vector<mapreduce::VerificationPoint> vps;
  for (const dataflow::OpId v : marks) vps.push_back({v, 32});
  const auto dag = mapreduce::compile(plan, vps, {.sid_prefix = "det"});

  DigestPass pass;
  mapreduce::Dfs dfs(2048);
  dfs.write("ta", input);
  auto run = mapreduce::run_job_dag_local(plan, dag, dfs);
  pass.mr_digests = std::move(run.digests);
  pass.mr_outputs = std::move(run.outputs);

  const auto golden = dataflow::interpret(plan, {{"ta", input}});
  for (const auto& [path, rel] : golden) {
    for (auto& cd : digest_relation(rel, 32)) {
      pass.interp_digests.push_back(cd);
    }
  }
  return pass;
}

// The core determinism contract: the same plan executed twice — through
// the reference interpreter and through the MR compiler + task layer —
// must produce bit-identical digests at every verification point. Any
// divergence here would surface as a false commission fault in the
// verifier. Swept over many random plans (ISSUE: >= 20 seeds).
TEST(DeterminismTest, VerificationPointDigestsBitStable) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const DigestPass a = digest_pass(seed);
    const DigestPass b = digest_pass(seed);

    ASSERT_FALSE(a.mr_digests.empty());
    ASSERT_EQ(a.mr_digests.size(), b.mr_digests.size());
    for (std::size_t i = 0; i < a.mr_digests.size(); ++i) {
      EXPECT_EQ(a.mr_digests[i].key, b.mr_digests[i].key)
          << a.mr_digests[i].key.to_string();
      EXPECT_EQ(a.mr_digests[i].digest, b.mr_digests[i].digest)
          << a.mr_digests[i].key.to_string();
      EXPECT_EQ(a.mr_digests[i].record_count, b.mr_digests[i].record_count);
    }

    ASSERT_FALSE(a.interp_digests.empty());
    ASSERT_EQ(a.interp_digests.size(), b.interp_digests.size());
    for (std::size_t i = 0; i < a.interp_digests.size(); ++i) {
      EXPECT_EQ(a.interp_digests[i], b.interp_digests[i]) << "chunk " << i;
    }

    // The two execution paths also agree on the final outputs.
    ASSERT_TRUE(a.mr_outputs.contains("out"));
    EXPECT_EQ(a.mr_outputs.at("out").sorted_rows(),
              b.mr_outputs.at("out").sorted_rows());
  }
}

TEST(DeterminismTest, IsolationSimulatorBitStable) {
  sim::IsolationSimConfig cfg;
  cfg.f = 2;
  cfg.replicas = 7;
  cfg.commission_prob = 0.4;
  cfg.seed = 99;
  const auto a = sim::run_isolation_sim(cfg);
  const auto b = sim::run_isolation_sim(cfg);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.final_suspects, b.final_suspects);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].low, b.timeline[i].low);
    EXPECT_EQ(a.timeline[i].high, b.timeline[i].high);
    EXPECT_EQ(a.timeline[i].analyzer_suspects,
              b.timeline[i].analyzer_suspects);
  }
}

}  // namespace
}  // namespace clusterbft
