// Strong-adversary-model tests (§2.3, §4.1): under a strong adversary a
// node controls everything it executes, so verification points are only
// meaningful at job boundaries — the graph analyzer restricts candidates
// accordingly — and a node that corrupts data *and* lies selectively is
// still caught because its replica's digest vector cannot match the
// honest majority's.
#include <gtest/gtest.h>

#include "baseline/presets.hpp"
#include "cluster/tracker.hpp"
#include "core/controller.hpp"
#include "protocol/seam.hpp"
#include "core/graph_analyzer.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"
#include "mapreduce/compiler.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"

namespace clusterbft::core {
namespace {

using cluster::AdversaryPolicy;
using cluster::TrackerConfig;

TEST(StrongAdversaryTest, PointsRestrictedToJobBoundaries) {
  const auto plan =
      dataflow::parse_script(workloads::airline_top20_analysis());
  std::map<std::string, std::uint64_t> sizes{{"airline/flights", 1 << 20}};

  ClientRequest weak;
  weak.n = 100;
  weak.verify_final_output = false;
  weak.adversary = AdversaryModel::kWeak;
  const auto weak_vps = analyze(plan, sizes, weak);

  ClientRequest strong = weak;
  strong.adversary = AdversaryModel::kStrong;
  const auto strong_vps = analyze(plan, sizes, strong);

  EXPECT_LT(strong_vps.size(), weak_vps.size());
  for (const auto& vp : strong_vps) {
    const auto kind = plan.node(vp.vertex).kind;
    const bool boundary =
        dataflow::is_blocking(kind) ||
        [&] {
          for (auto c : plan.children(vp.vertex)) {
            if (plan.node(c).kind == dataflow::OpKind::kStore) return true;
          }
          return false;
        }();
    EXPECT_TRUE(boundary) << plan.node(vp.vertex).to_string();
  }
}

TEST(StrongAdversaryTest, StrongModelVerifiesUnderDataAndDigestCorruption) {
  // The nastiest single node we model: corrupts the data it computes AND
  // would lie about digests if it could; replicate and verify under the
  // strong model.
  TrackerConfig cfg;
  cfg.num_nodes = 12;
  cfg.policies[1] = AdversaryPolicy{.commission_prob = 1.0};
  cfg.policies[2] =
      AdversaryPolicy{.commission_prob = 1.0, .lie_in_digest = true};

  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  cluster::ExecutionTracker tracker(sim, dfs, cfg);
  workloads::TwitterConfig tw;
  tw.num_edges = 1500;
  tw.num_users = 200;
  dfs.write("twitter/edges", workloads::generate_twitter_edges(tw));
  protocol::LoopbackSeam seam(tracker);
  ClusterBft controller(sim, dfs, seam.transport, seam.programs);

  auto req = baseline::cluster_bft(workloads::twitter_follower_analysis(),
                                   "strong", /*f=*/2, /*r=*/3, /*n=*/1);
  req.adversary = AdversaryModel::kStrong;
  const auto res = controller.execute(req);
  ASSERT_TRUE(res.verified);

  const auto plan =
      dataflow::parse_script(workloads::twitter_follower_analysis());
  const auto golden = dataflow::interpret(
      plan, {{"twitter/edges", dfs.read("twitter/edges")}});
  EXPECT_EQ(res.outputs.at("out/follower_counts").sorted_rows(),
            golden.at("out/follower_counts").sorted_rows());
}

TEST(StrongAdversaryTest, StrongModelStillComparableAcrossReplicas) {
  // Digest keys under the strong model are reduce-side only; two honest
  // executions produce identical digest vectors.
  const auto plan =
      dataflow::parse_script(workloads::twitter_follower_analysis());
  ClientRequest req;
  req.adversary = AdversaryModel::kStrong;
  req.n = 1;
  const auto vps =
      analyze(plan, {{"twitter/edges", 1 << 20}}, req);
  mapreduce::CompileOptions opts;
  opts.sid_prefix = "t";
  const auto dag = mapreduce::compile(plan, vps, opts);
  for (const auto& job : dag.jobs) {
    for (const auto& vp : job.vps) {
      EXPECT_FALSE(job.is_map_side(vp.vertex))
          << "strong-model point compiled map-side";
    }
  }
}

}  // namespace
}  // namespace clusterbft::core
