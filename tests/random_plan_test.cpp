// Property test: randomly generated scripts execute identically through
// the reference interpreter and the full distributed pipeline (compiler,
// simulated cluster, ClusterBFT verification with r=2). This sweeps far
// more operator combinations than the hand-written integration tests.
#include <gtest/gtest.h>

#include "baseline/presets.hpp"
#include "cluster/tracker.hpp"
#include "common/rng.hpp"
#include "core/controller.hpp"
#include "protocol/seam.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"
#include "random_script.hpp"

namespace clusterbft {
namespace {

using dataflow::Relation;
using testgen::random_script;
using testgen::random_table;

class RandomPlanSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPlanSweep, DistributedMatchesInterpreter) {
  Rng rng(GetParam());
  const Relation input = random_table(rng, 300);
  const std::string script = random_script(rng);
  SCOPED_TRACE(script);

  const auto plan = dataflow::parse_script(script);
  const auto golden = dataflow::interpret(plan, {{"ta", input}});

  cluster::EventSim sim;
  mapreduce::Dfs dfs(2048);  // small blocks: many map tasks
  cluster::TrackerConfig cfg;
  cfg.num_nodes = 8;
  cluster::ExecutionTracker tracker(sim, dfs, cfg);
  dfs.write("ta", input);
  protocol::LoopbackSeam seam(tracker);
  core::ClusterBft controller(sim, dfs, seam.transport, seam.programs);

  const auto res = controller.execute(
      baseline::cluster_bft(script, "rand", 1, 2, 1));
  ASSERT_TRUE(res.verified);
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs.at("out").sorted_rows(),
            golden.at("out").sorted_rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlanSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace clusterbft
