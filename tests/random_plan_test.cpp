// Property test: randomly generated scripts execute identically through
// the reference interpreter and the full distributed pipeline (compiler,
// simulated cluster, ClusterBFT verification with r=2). This sweeps far
// more operator combinations than the hand-written integration tests.
#include <gtest/gtest.h>

#include <sstream>

#include "baseline/presets.hpp"
#include "cluster/tracker.hpp"
#include "common/rng.hpp"
#include "core/controller.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"

namespace clusterbft {
namespace {

using dataflow::Relation;
using dataflow::Schema;
using dataflow::Tuple;
using dataflow::Value;
using dataflow::ValueType;

/// A random flat table: (k:long, v:long, s:chararray) with some nulls.
Relation random_table(Rng& rng, std::size_t rows) {
  Relation rel(Schema::of({{"k", ValueType::kLong},
                           {"v", ValueType::kLong},
                           {"s", ValueType::kChararray}}));
  for (std::size_t i = 0; i < rows; ++i) {
    Tuple t;
    t.fields.push_back(Value(rng.uniform_int(0, 8)));
    if (rng.chance(0.1)) {
      t.fields.push_back(Value::null());
    } else {
      t.fields.push_back(Value(rng.uniform_int(-50, 50)));
    }
    t.fields.push_back(Value(std::string(1, static_cast<char>(
                                                'a' + rng.next_below(4)))));
    rel.add(std::move(t));
  }
  return rel;
}

/// Build a random script over inputs 'ta' (and sometimes 'tb').
std::string random_script(Rng& rng) {
  std::ostringstream os;
  os << "a = LOAD 'ta' AS (k:long, v:long, s:chararray);\n";
  std::string cur = "a";
  int step = 0;
  auto fresh = [&step] { return "x" + std::to_string(step++); };

  // 1-3 streaming/blocking stages.
  const int stages = 1 + static_cast<int>(rng.next_below(3));
  bool grouped = false;
  for (int i = 0; i < stages && !grouped; ++i) {
    const auto pick = rng.next_below(6);
    const std::string next = fresh();
    switch (pick) {
      case 0:
        os << next << " = FILTER " << cur << " BY v IS NOT NULL;\n";
        break;
      case 1:
        os << next << " = FILTER " << cur << " BY ABS(v) > "
           << rng.next_below(30) << ";\n";
        break;
      case 2:
        os << next << " = FOREACH " << cur
           << " GENERATE k, v + 1 AS v, UPPER(s) AS s;\n";
        break;
      case 3:
        os << next << " = DISTINCT " << cur << ";\n";
        break;
      case 4: {
        // Self-join on k, then project back to the 3-column shape.
        os << "b" << step << " = LOAD 'ta' AS (k2:long, v2:long, s2:chararray);\n";
        os << next << "j = JOIN " << cur << " BY k, b" << step
           << " BY k2;\n";
        os << next << " = FOREACH " << next
           << "j GENERATE k, v2 AS v, s AS s;\n";
        ++step;
        break;
      }
      case 5: {
        // Group + aggregate ends the pipeline (output shape changes).
        os << next << " = GROUP " << cur << " BY k;\n";
        const std::string agg = fresh();
        os << agg << " = FOREACH " << next
           << " GENERATE group AS k, COUNT(" << cur << ") AS n, SUM(" << cur
           << ".v) AS total;\n";
        cur = agg;
        grouped = true;
        continue;
      }
    }
    if (pick != 5) cur = next;
  }
  os << "STORE " << cur << " INTO 'out';\n";
  return os.str();
}

class RandomPlanSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPlanSweep, DistributedMatchesInterpreter) {
  Rng rng(GetParam());
  const Relation input = random_table(rng, 300);
  const std::string script = random_script(rng);
  SCOPED_TRACE(script);

  const auto plan = dataflow::parse_script(script);
  const auto golden = dataflow::interpret(plan, {{"ta", input}});

  cluster::EventSim sim;
  mapreduce::Dfs dfs(2048);  // small blocks: many map tasks
  cluster::TrackerConfig cfg;
  cfg.num_nodes = 8;
  cluster::ExecutionTracker tracker(sim, dfs, cfg);
  dfs.write("ta", input);
  core::ClusterBft controller(sim, dfs, tracker);

  const auto res = controller.execute(
      baseline::cluster_bft(script, "rand", 1, 2, 1));
  ASSERT_TRUE(res.verified);
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs.at("out").sorted_rows(),
            golden.at("out").sorted_rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlanSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace clusterbft
