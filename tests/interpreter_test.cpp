#include "dataflow/interpreter.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "dataflow/parser.hpp"
#include "workloads/airline.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"
#include "workloads/weather.hpp"

namespace clusterbft::dataflow {
namespace {

Relation table(std::vector<std::vector<Value>> rows,
               std::vector<Field> fields) {
  Relation r(Schema(std::move(fields)));
  for (auto& row : rows) r.add(Tuple(std::move(row)));
  return r;
}

std::int64_t L(std::int64_t x) { return x; }

TEST(InterpreterTest, FilterGroupCountPipeline) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (k:long, v:long);\n"
      "f = FILTER a BY v IS NOT NULL;\n"
      "g = GROUP f BY k;\n"
      "c = FOREACH g GENERATE group AS k, COUNT(f) AS n, SUM(f.v) AS total;\n"
      "STORE c INTO 'out';\n");
  const Relation in = table(
      {{Value(L(1)), Value(L(10))},
       {Value(L(1)), Value(L(20))},
       {Value(L(2)), Value::null()},
       {Value(L(2)), Value(L(5))}},
      {{"k", ValueType::kLong}, {"v", ValueType::kLong}});
  const auto out = interpret(plan, {{"in", in}});
  const Relation& c = out.at("out");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.rows()[0].at(0).as_long(), 1);
  EXPECT_EQ(c.rows()[0].at(1).as_long(), 2);
  EXPECT_EQ(c.rows()[0].at(2).as_long(), 30);
  EXPECT_EQ(c.rows()[1].at(0).as_long(), 2);
  EXPECT_EQ(c.rows()[1].at(1).as_long(), 1);
  EXPECT_EQ(c.rows()[1].at(2).as_long(), 5);
}

TEST(InterpreterTest, JoinProjectDistinct) {
  const auto plan = parse_script(
      "a = LOAD 'edges' AS (u:long, f:long);\n"
      "b = LOAD 'edges' AS (u2:long, f2:long);\n"
      "j = JOIN a BY f, b BY u2;\n"
      "p = FOREACH j GENERATE u AS src, f2 AS dst;\n"
      "d = DISTINCT p;\n"
      "STORE d INTO 'out';\n");
  // 1->2, 2->3, 2->4: two-hop pairs are (1,3) and (1,4).
  const Relation edges = table(
      {{Value(L(1)), Value(L(2))},
       {Value(L(2)), Value(L(3))},
       {Value(L(2)), Value(L(4))}},
      {{"u", ValueType::kLong}, {"f", ValueType::kLong}});
  const auto out = interpret(plan, {{"edges", edges}});
  const Relation& d = out.at("out");
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.rows()[0].at(0).as_long(), 1);
  EXPECT_EQ(d.rows()[0].at(1).as_long(), 3);
  EXPECT_EQ(d.rows()[1].at(1).as_long(), 4);
}

TEST(InterpreterTest, UnionOrderLimit) {
  const auto plan = parse_script(
      "a = LOAD 'l' AS (x:long);\n"
      "b = LOAD 'r' AS (x:long);\n"
      "u = UNION a, b;\n"
      "o = ORDER u BY x DESC;\n"
      "t = LIMIT o 2;\n"
      "STORE t INTO 'out';\n");
  const auto out = interpret(
      plan, {{"l", table({{Value(L(3))}, {Value(L(1))}},
                         {{"x", ValueType::kLong}})},
             {"r", table({{Value(L(2))}}, {{"x", ValueType::kLong}})}});
  const Relation& t = out.at("out");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.rows()[0].at(0).as_long(), 3);
  EXPECT_EQ(t.rows()[1].at(0).as_long(), 2);
}

TEST(InterpreterTest, MultiStoreSharesAScan) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long);\n"
      "p = FILTER a BY x > 0;\n"
      "g = GROUP p BY x;\n"
      "c = FOREACH g GENERATE group, COUNT(p);\n"
      "STORE p INTO 'o1';\n"
      "STORE c INTO 'o2';\n");
  const auto out = interpret(
      plan,
      {{"in", table({{Value(L(1))}, {Value(L(1))}, {Value(L(-2))}},
                    {{"x", ValueType::kLong}})}});
  EXPECT_EQ(out.at("o1").size(), 2u);
  EXPECT_EQ(out.at("o2").size(), 1u);
  EXPECT_EQ(out.at("o2").rows()[0].at(1).as_long(), 2);
}

TEST(InterpreterTest, MissingInputThrows) {
  const auto plan = parse_script(
      "a = LOAD 'nope' AS (x:long);\nSTORE a INTO 'o';\n");
  EXPECT_THROW(interpret(plan, {}), CheckError);
}

TEST(InterpreterTest, ArityMismatchThrows) {
  const auto plan = parse_script(
      "a = LOAD 'in' AS (x:long, y:long);\nSTORE a INTO 'o';\n");
  EXPECT_THROW(
      interpret(plan, {{"in", table({{Value(L(1))}},
                                    {{"x", ValueType::kLong}})}}),
      CheckError);
}

// ---- sanity of the paper scripts on synthetic workloads ----

TEST(InterpreterTest, FollowerCountsConserveEdges) {
  workloads::TwitterConfig cfg;
  cfg.num_edges = 5000;
  const Relation edges = workloads::generate_twitter_edges(cfg);
  const auto plan = parse_script(workloads::twitter_follower_analysis());
  const auto out = interpret(plan, {{"twitter/edges", edges}});
  const Relation& counts = out.at("out/follower_counts");
  std::int64_t total = 0;
  for (const Tuple& t : counts.rows()) total += t.at(1).as_long();
  // Total counted followers == number of well-formed edges.
  std::int64_t well_formed = 0;
  for (const Tuple& t : edges.rows()) {
    if (!t.at(0).is_null() && !t.at(1).is_null()) ++well_formed;
  }
  EXPECT_EQ(total, well_formed);
}

TEST(InterpreterTest, AirlineTop20HasAtMost20Rows) {
  workloads::AirlineConfig cfg;
  cfg.num_flights = 3000;
  const Relation flights = workloads::generate_flights(cfg);
  const auto plan = parse_script(workloads::airline_top20_analysis());
  const auto out = interpret(plan, {{"airline/flights", flights}});
  for (const char* store :
       {"out/top_outbound", "out/top_inbound", "out/top_overall"}) {
    const Relation& top = out.at(store);
    EXPECT_LE(top.size(), 20u);
    EXPECT_GT(top.size(), 0u);
    // Ordered by count descending.
    for (std::size_t i = 1; i < top.size(); ++i) {
      EXPECT_GE(top.rows()[i - 1].at(1).as_long(),
                top.rows()[i].at(1).as_long());
    }
  }
}

TEST(InterpreterTest, WeatherHistogramCountsAllStations) {
  workloads::WeatherConfig cfg;
  cfg.num_stations = 100;
  cfg.readings_per_station = 10;
  const Relation readings = workloads::generate_weather(cfg);
  const auto plan = parse_script(workloads::weather_average_analysis());
  const auto out = interpret(plan, {{"weather/gsod", readings}});
  const Relation& hist = out.at("out/weather_hist");
  std::int64_t stations = 0;
  for (const Tuple& t : hist.rows()) stations += t.at(1).as_long();
  EXPECT_EQ(stations, 100);
}

}  // namespace
}  // namespace clusterbft::dataflow
