// Paillier cryptosystem tests: modular arithmetic primitives, key
// generation, round trips, and the homomorphic properties the
// confidential-analysis example relies on.
#include "crypto/paillier.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace clusterbft::crypto {
namespace {

TEST(U128MathTest, MulModAgainstSmallCases) {
  EXPECT_EQ(mul_mod_u128(7, 8, 5), 56 % 5);
  EXPECT_EQ(mul_mod_u128(0, 99, 7), 0u);
  EXPECT_EQ(mul_mod_u128(123456789, 987654321, 1000000007),
            U128{123456789} * 987654321 % 1000000007);
}

TEST(U128MathTest, MulModHandlesHugeOperands) {
  // Residues close to a 127-bit modulus would overflow a naive multiply.
  const U128 m = (U128{1} << 126) + 5;
  const U128 a = m - 2;
  const U128 b = m - 3;
  // (m-2)(m-3) mod m = 6 mod m.
  EXPECT_EQ(mul_mod_u128(a, b, m), U128{6});
}

TEST(U128MathTest, PowMod) {
  EXPECT_EQ(pow_mod_u128(2, 10, 1000000), 1024u);
  EXPECT_EQ(pow_mod_u128(5, 0, 7), 1u);
  // Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(pow_mod_u128(123456, 1000000006, 1000000007), 1u);
}

TEST(U128MathTest, InvMod) {
  for (std::uint64_t a : {2ull, 3ull, 10ull, 999999999ull}) {
    const U128 inv = inv_mod_u128(a, 1000000007);
    EXPECT_EQ(mul_mod_u128(a, inv, 1000000007), 1u) << a;
  }
  EXPECT_THROW(inv_mod_u128(6, 9), CheckError);  // gcd 3, no inverse
}

TEST(U128MathTest, PrimalityOnKnownCases) {
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(3));
  EXPECT_TRUE(is_prime_u64(1000000007));
  EXPECT_TRUE(is_prime_u64(4294967291ull));  // largest 32-bit prime
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_FALSE(is_prime_u64(561));        // Carmichael
  EXPECT_FALSE(is_prime_u64(4294967295ull));
}

TEST(U128MathTest, HexRoundTrip) {
  for (U128 x : {U128{0}, U128{1}, U128{0xdeadbeef},
                 (U128{0x0123456789abcdefULL} << 64) | 0xfedcba9876543210ULL}) {
    EXPECT_EQ(u128_from_hex(u128_to_hex(x)), x);
  }
  EXPECT_THROW(u128_from_hex("xyz"), CheckError);
  EXPECT_THROW(u128_from_hex(""), CheckError);
}

TEST(PaillierTest, EncryptDecryptRoundTrip) {
  Rng rng(42);
  const auto kp = paillier_generate(rng);
  for (std::uint64_t m : {0ull, 1ull, 7ull, 123456ull, 99999999ull}) {
    const U128 c = paillier_encrypt(kp.pub, m, rng);
    EXPECT_EQ(paillier_decrypt(kp.pub, kp.priv, c), m) << m;
  }
}

TEST(PaillierTest, EncryptionIsRandomised) {
  Rng rng(43);
  const auto kp = paillier_generate(rng);
  const U128 c1 = paillier_encrypt(kp.pub, 5, rng);
  const U128 c2 = paillier_encrypt(kp.pub, 5, rng);
  EXPECT_NE(c1, c2);  // semantic security
  EXPECT_EQ(paillier_decrypt(kp.pub, kp.priv, c1), 5u);
  EXPECT_EQ(paillier_decrypt(kp.pub, kp.priv, c2), 5u);
}

TEST(PaillierTest, HomomorphicAddition) {
  Rng rng(44);
  const auto kp = paillier_generate(rng);
  const U128 ca = paillier_encrypt(kp.pub, 1234, rng);
  const U128 cb = paillier_encrypt(kp.pub, 8766, rng);
  const U128 sum = paillier_add(kp.pub, ca, cb);
  EXPECT_EQ(paillier_decrypt(kp.pub, kp.priv, sum), 10000u);
}

TEST(PaillierTest, HomomorphicAdditionSweep) {
  Rng rng(45);
  const auto kp = paillier_generate(rng);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t a = rng.next_below(1u << 20);
    const std::uint64_t b = rng.next_below(1u << 20);
    const U128 c = paillier_add(kp.pub, paillier_encrypt(kp.pub, a, rng),
                                paillier_encrypt(kp.pub, b, rng));
    EXPECT_EQ(paillier_decrypt(kp.pub, kp.priv, c), a + b);
  }
}

TEST(PaillierTest, HomomorphicPlaintextMultiplication) {
  Rng rng(46);
  const auto kp = paillier_generate(rng);
  const U128 c = paillier_encrypt(kp.pub, 111, rng);
  const U128 c9 = paillier_mul_plain(kp.pub, c, 9);
  EXPECT_EQ(paillier_decrypt(kp.pub, kp.priv, c9), 999u);
}

TEST(PaillierTest, ZeroIsNeutral) {
  Rng rng(47);
  const auto kp = paillier_generate(rng);
  const U128 c = paillier_encrypt(kp.pub, 777, rng);
  const U128 sum = paillier_add(kp.pub, c, paillier_zero(kp.pub));
  EXPECT_EQ(paillier_decrypt(kp.pub, kp.priv, sum), 777u);
}

TEST(PaillierTest, ManyTermAggregation) {
  // The shape the confidential-weather example uses: fold a whole bag of
  // ciphertexts into one encrypted sum.
  Rng rng(48);
  const auto kp = paillier_generate(rng);
  U128 acc = paillier_zero(kp.pub);
  std::uint64_t expected = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t v = rng.next_below(10000);
    expected += v;
    acc = paillier_add(kp.pub, acc, paillier_encrypt(kp.pub, v, rng));
  }
  EXPECT_EQ(paillier_decrypt(kp.pub, kp.priv, acc), expected);
}

TEST(PaillierTest, WrongKeyDecryptsGarbage) {
  Rng rng(49);
  const auto kp1 = paillier_generate(rng);
  const auto kp2 = paillier_generate(rng);
  ASSERT_NE(kp1.pub.n, kp2.pub.n);
  const U128 c = paillier_encrypt(kp1.pub, 424242, rng);
  EXPECT_NE(paillier_decrypt(kp2.pub, kp2.priv, c % kp2.pub.n2), 424242u);
}

TEST(PaillierTest, KeyGenerationIsSeedDeterministic) {
  Rng a(50), b(50);
  EXPECT_EQ(paillier_generate(a).pub.n, paillier_generate(b).pub.n);
}

TEST(PaillierTest, SmallPrimesAlsoWork) {
  Rng rng(51);
  const auto kp = paillier_generate(rng, /*prime_bits=*/16);
  const U128 c = paillier_encrypt(kp.pub, 12345, rng);
  EXPECT_EQ(paillier_decrypt(kp.pub, kp.priv, c), 12345u);
}

}  // namespace
}  // namespace clusterbft::crypto
