// Property test for the control-plane codec: for seeded randomized
// instances of every message type, encode -> decode -> re-encode yields
// identical bytes and an equal value; every truncated prefix and a sweep
// of single-byte corruptions are rejected (or decode to some well-formed
// message) without crashing — the control tier must survive a byzantine
// computation tier flipping bits on the wire. Runs under the asan-ubsan
// preset too, where any out-of-bounds read in the decoder is fatal.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "protocol/codec.hpp"

namespace clusterbft::protocol {
namespace {

std::string rand_str(Rng& rng) {
  const std::size_t len = rng.next_below(24);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng.next_below(26)));
  }
  return s;
}

std::vector<Text> rand_strs(Rng& rng) {
  std::vector<Text> v(rng.next_below(4));
  for (auto& s : v) s = rand_str(rng);
  return v;
}

std::vector<std::uint64_t> rand_ids(Rng& rng) {
  std::vector<std::uint64_t> v(rng.next_below(5));
  for (auto& x : v) x = rng.next();
  return v;
}

mapreduce::DigestReport rand_report(Rng& rng) {
  mapreduce::DigestReport r;
  r.key.sid = rand_str(rng);
  r.key.vertex = rng.next_below(64);
  r.key.reduce_side = rng.chance(0.5);
  r.key.branch = rng.next_below(4);
  r.key.partition = rng.next_below(16);
  r.key.chunk = rng.next();
  r.replica = rng.next_below(5);
  for (auto& b : r.digest.bytes) b = static_cast<std::uint8_t>(rng.next());
  r.record_count = rng.next();
  return r;
}

/// One randomized instance of message type `type` (variant index).
Message rand_message(std::size_t type, Rng& rng) {
  switch (type) {
    case 0: {
      SubmitRun m;
      m.run = rng.next();
      m.program = rng.next();
      m.job_index = rng.next_below(8);
      m.replica = rng.next_below(4);
      m.input_paths = rand_strs(rng);
      m.output_path = rand_str(rng);
      m.avoid = rand_ids(rng);
      m.restrict_to = rand_ids(rng);
      m.max_nodes = rng.next_below(32);
      m.urgent = static_cast<std::uint8_t>(rng.next_below(2));
      return m;
    }
    case 1:
      return CancelRun{rng.next()};
    case 2: {
      ProbeRequest m;
      m.probe = rng.next();
      m.run_suspect = rng.next();
      m.run_control = rng.next();
      m.input_path = rand_str(rng);
      m.suspect_path = rand_str(rng);
      m.control_path = rand_str(rng);
      m.suspect = rng.next_below(32);
      m.avoid = rand_ids(rng);
      return m;
    }
    case 3:
      return AddNodes{rng.next_below(8), rng.next_below(4), rng.next()};
    case 4:
      return DrainNode{rng.next_below(32)};
    case 5:
      return NodeAnnounce{rng.next_below(32), rng.next_below(8)};
    case 6:
      return NodeDrained{rng.next_below(32)};
    case 7:
      return NodeStatus{rng.next(), rng.next_below(32)};
    case 8: {
      Heartbeat m;
      m.run = rng.next();
      m.node = rng.next_below(32);
      m.reduce = rng.chance(0.5) ? 1 : 0;
      m.cpu_seconds = rng.uniform(0.0, 100.0);
      m.file_read = rng.next();
      m.file_write = rng.next();
      m.digested = rng.next();
      m.seq = rng.next();
      return m;
    }
    case 9: {
      DigestBatch m;
      m.run = rng.next();
      m.node = rng.next_below(32);
      m.reports.resize(rng.next_below(6));
      for (auto& r : m.reports) r = rand_report(rng);
      m.seq = rng.next();
      return m;
    }
    case 10: {
      RunComplete m;
      m.run = rng.next();
      m.output_path = rand_str(rng);
      m.hdfs_write = rng.next();
      m.digest_reports = rng.next();
      return m;
    }
    case 11:
      return ProbeReply{rng.next(), rng.next(), rand_str(rng)};
    case 12:
      return ReadmitNode{rng.next_below(32)};
    case 13:
      return NodeReadmitted{rng.next_below(32)};
    default:
      ADD_FAILURE() << "unknown type " << type;
      return CancelRun{};
  }
}

constexpr std::size_t kNumTypes = std::variant_size_v<Message>;

TEST(ProtocolCodecTest, RoundTripIsIdentityForAllTypes) {
  Rng rng(2026);
  for (std::size_t type = 0; type < kNumTypes; ++type) {
    for (int iter = 0; iter < 50; ++iter) {
      const Message m = rand_message(type, rng);
      const auto bytes = encode(m);
      const auto back = decode(bytes);
      ASSERT_TRUE(back.has_value()) << "type " << type << " iter " << iter;
      EXPECT_EQ(back->index(), m.index());
      // Equal value <=> identical re-encoding (encode is a pure function
      // of the message value).
      EXPECT_EQ(encode(*back), bytes) << "type " << type << " iter " << iter;
    }
  }
}

/// True iff `v` is a view into the byte range of `frame` (empty views
/// pass vacuously: there is nothing to copy).
bool views_into(std::string_view v, const std::vector<std::uint8_t>& frame) {
  if (v.empty()) return true;
  const char* lo = reinterpret_cast<const char*>(frame.data());
  const char* hi = lo + frame.size();
  return v.data() >= lo && v.data() + v.size() <= hi;
}

TEST(ProtocolCodecTest, DecodeBorrowsPayloadStringsFromFrame) {
  // Zero-copy regression guard: on the happy path, decode must not
  // allocate-and-copy payload strings — every Text field is a borrow
  // whose view() points inside the frame buffer.
  Rng rng(31);
  SubmitRun m;
  m.run = 7;
  m.input_paths = {rand_str(rng), rand_str(rng), rand_str(rng)};
  m.output_path = "out/" + rand_str(rng);
  const auto bytes = encode(Message{m});
  const auto back = decode(bytes);
  ASSERT_TRUE(back.has_value());
  const auto& sr = std::get<SubmitRun>(*back);
  for (const Text& p : sr.input_paths) {
    EXPECT_TRUE(p.borrowed());
    EXPECT_TRUE(views_into(p.view(), bytes)) << p;
  }
  EXPECT_TRUE(sr.output_path.borrowed());
  EXPECT_TRUE(views_into(sr.output_path.view(), bytes));

  ProbeRequest pr;
  pr.input_path = rand_str(rng);
  pr.suspect_path = rand_str(rng);
  pr.control_path = rand_str(rng);
  const auto pr_bytes = encode(Message{pr});
  const auto pr_back = decode(pr_bytes);
  ASSERT_TRUE(pr_back.has_value());
  const auto& got = std::get<ProbeRequest>(*pr_back);
  EXPECT_TRUE(got.input_path.borrowed() && got.suspect_path.borrowed() &&
              got.control_path.borrowed());
  EXPECT_TRUE(views_into(got.input_path.view(), pr_bytes));
  EXPECT_TRUE(views_into(got.suspect_path.view(), pr_bytes));
  EXPECT_TRUE(views_into(got.control_path.view(), pr_bytes));
}

TEST(ProtocolCodecTest, CopyAndOwnPayloadMaterializeBorrows) {
  RunComplete m;
  m.run = 3;
  m.output_path = "w1/out/final";
  const auto bytes = encode(Message{m});

  // Copying a decoded message detaches it from the frame.
  Message copied = *decode(bytes);
  {
    Message tmp = copied;  // copy materializes
    copied = std::move(tmp);
  }
  const auto& rc = std::get<RunComplete>(copied);
  EXPECT_FALSE(rc.output_path.borrowed());
  EXPECT_EQ(rc.output_path.str(), "w1/out/final");

  // decode_owned is the one-step escape hatch.
  const auto owned = decode_owned(bytes);
  ASSERT_TRUE(owned.has_value());
  EXPECT_FALSE(std::get<RunComplete>(*owned).output_path.borrowed());
  EXPECT_EQ(std::get<RunComplete>(*owned).output_path.str(), "w1/out/final");

  // Moves preserve the borrow (the delivery hand-off path).
  auto borrowed = decode(bytes);
  Message moved = std::move(*borrowed);
  EXPECT_TRUE(std::get<RunComplete>(moved).output_path.borrowed());
}

TEST(ProtocolCodecTest, EveryTruncatedPrefixIsRejected) {
  Rng rng(7);
  for (std::size_t type = 0; type < kNumTypes; ++type) {
    const Message m = rand_message(type, rng);
    const auto bytes = encode(m);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_FALSE(decode(bytes.data(), len).has_value())
          << "type " << type << " accepted a " << len << "-byte prefix of a "
          << bytes.size() << "-byte frame";
    }
  }
}

TEST(ProtocolCodecTest, TrailingBytesAreRejected) {
  const auto bytes = encode(Message{CancelRun{42}});
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(decode(padded).has_value());
}

TEST(ProtocolCodecTest, BadMagicVersionAndTypeAreRejected) {
  const auto good = encode(Message{NodeDrained{3}});
  {
    auto b = good;
    b[0] ^= 0xff;  // magic
    EXPECT_FALSE(decode(b).has_value());
  }
  {
    auto b = good;
    b[4] ^= 0xff;  // version
    EXPECT_FALSE(decode(b).has_value());
  }
  {
    auto b = good;
    b[6] = 0;  // type 0 is reserved
    EXPECT_FALSE(decode(b).has_value());
  }
  {
    auto b = good;
    b[6] = static_cast<std::uint8_t>(kNumTypes + 1);  // out of range
    b[7] = 0;
    EXPECT_FALSE(decode(b).has_value());
  }
}

TEST(ProtocolCodecTest, SingleByteCorruptionIsAlwaysDetected) {
  // Flip each byte of each frame through a few XOR masks. CRC-32 detects
  // every single-byte error regardless of position (header, checksum
  // field, or payload), so EVERY tampered frame must be rejected — a
  // bit-flipped run id masquerading as a fresh command is exactly the
  // corruption class that could re-execute over a verified output path.
  Rng rng(99);
  for (std::size_t type = 0; type < kNumTypes; ++type) {
    const Message m = rand_message(type, rng);
    const auto bytes = encode(m);
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
      for (std::uint8_t mask :
           {std::uint8_t{0x01}, std::uint8_t{0x80}, std::uint8_t{0xff}}) {
        auto b = bytes;
        b[pos] ^= mask;
        EXPECT_FALSE(decode(b).has_value())
            << "type " << type << " accepted a frame corrupted at byte "
            << pos;
      }
    }
  }
}

TEST(ProtocolCodecTest, ResealedTamperingStillFacesDeepValidation) {
  // reseal_frame lets a hostile WELL-CHECKSUMMED frame through to the
  // payload validators — the checksum is integrity, not authentication,
  // so the deeper checks must still hold on resealed garbage.
  const auto good = encode(Message{CancelRun{42}});
  {
    auto b = good;
    b[6] = 0;  // type 0 is reserved
    reseal_frame(b);
    EXPECT_FALSE(decode(b).has_value());
  }
  {
    // A resealed flip in a payload integer decodes to a different, valid
    // value: corruption past the checksum is indistinguishable from a
    // different (well-formed) command by design.
    auto b = good;
    b.back() ^= 0x01;
    reseal_frame(b);
    const auto back = decode(b);
    ASSERT_TRUE(back.has_value());
    EXPECT_NE(std::get<CancelRun>(*back).run, 42u);
  }
}

TEST(ProtocolCodecTest, HostileCountFieldsAreRejected) {
  // A DigestBatch frame whose report count claims far more elements than
  // the payload holds must be rejected without attempting the allocation.
  DigestBatch m;
  m.run = 1;
  m.node = 2;
  auto bytes = encode(Message{m});
  // Payload layout: run u64, node u64, count u32. Overwrite the count
  // (header is 16 bytes: magic, version, type, length, crc).
  const std::size_t count_off = 16 + 8 + 8;
  ASSERT_LT(count_off + 3, bytes.size() + 4);
  bytes.resize(count_off + 4);
  bytes[count_off + 0] = 0xff;
  bytes[count_off + 1] = 0xff;
  bytes[count_off + 2] = 0xff;
  bytes[count_off + 3] = 0x7f;
  // Fix the envelope length to match the (short) payload and reseal the
  // checksum: the COUNT validation, not the integrity check, must be
  // what rejects this frame.
  const std::uint32_t payload = static_cast<std::uint32_t>(bytes.size() - 16);
  bytes[8] = static_cast<std::uint8_t>(payload);
  bytes[9] = static_cast<std::uint8_t>(payload >> 8);
  bytes[10] = static_cast<std::uint8_t>(payload >> 16);
  bytes[11] = static_cast<std::uint8_t>(payload >> 24);
  reseal_frame(bytes);
  EXPECT_FALSE(decode(bytes).has_value());
}

}  // namespace
}  // namespace clusterbft::protocol
