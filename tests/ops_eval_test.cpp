#include "dataflow/ops_eval.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace clusterbft::dataflow {
namespace {

Relation table(std::vector<std::vector<Value>> rows,
               std::vector<Field> fields) {
  Relation r(Schema(std::move(fields)));
  for (auto& row : rows) r.add(Tuple(std::move(row)));
  return r;
}

std::int64_t L(std::int64_t x) { return x; }

TEST(OpsEvalTest, Filter) {
  const Relation in = table({{Value(L(1))}, {Value(L(5))}, {Value::null()}},
                            {{"x", ValueType::kLong}});
  OpNode op;
  op.kind = OpKind::kFilter;
  op.schema = in.schema();
  op.predicate = Expr::binary(BinOp::kGt, Expr::column_ref(0, "x"),
                              Expr::literal_of(Value(L(2))));
  const Relation out = eval_filter(op, in);
  ASSERT_EQ(out.size(), 1u);  // null comparison is falsy, 1 fails, 5 passes
  EXPECT_EQ(out.rows()[0].at(0).as_long(), 5);
}

TEST(OpsEvalTest, ForeachProjects) {
  const Relation in = table({{Value(L(2)), Value(L(3))}},
                            {{"x", ValueType::kLong}, {"y", ValueType::kLong}});
  OpNode op;
  op.kind = OpKind::kForeach;
  op.schema = Schema::of({{"s", ValueType::kLong}});
  op.gen.push_back({Expr::binary(BinOp::kMul, Expr::column_ref(0, "x"),
                                 Expr::column_ref(1, "y")),
                    "s"});
  const Relation out = eval_foreach(op, in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.rows()[0].at(0).as_long(), 6);
}

OpNode group_op(const Relation& in, std::size_t key) {
  OpNode op;
  op.kind = OpKind::kGroup;
  op.group_keys = {key};
  op.schema = Schema::of({{"group", in.schema().at(key).type},
                          {"bag", ValueType::kBag}});
  return op;
}

TEST(OpsEvalTest, GroupCollectsAndSortsBags) {
  const Relation in = table(
      {{Value(L(1)), Value(L(9))}, {Value(L(2)), Value(L(5))},
       {Value(L(1)), Value(L(3))}},
      {{"k", ValueType::kLong}, {"v", ValueType::kLong}});
  const Relation out = eval_group(group_op(in, 0), in);
  ASSERT_EQ(out.size(), 2u);
  // Groups come out in key order.
  EXPECT_EQ(out.rows()[0].at(0).as_long(), 1);
  const auto& bag = *out.rows()[0].at(1).as_bag();
  ASSERT_EQ(bag.size(), 2u);
  // Bags are canonically sorted (replica determinism): (1,3) before (1,9).
  EXPECT_EQ(bag[0].at(1).as_long(), 3);
  EXPECT_EQ(bag[1].at(1).as_long(), 9);
}

TEST(OpsEvalTest, GroupIsInputOrderInsensitive) {
  const std::vector<std::vector<Value>> rows{
      {Value(L(1)), Value(L(9))}, {Value(L(2)), Value(L(5))},
      {Value(L(1)), Value(L(3))}};
  auto make = [&](std::vector<std::size_t> order) {
    Relation r(Schema::of({{"k", ValueType::kLong}, {"v", ValueType::kLong}}));
    for (std::size_t i : order) r.add(Tuple(rows[i]));
    return r;
  };
  const Relation a = make({0, 1, 2});
  const Relation b = make({2, 0, 1});
  EXPECT_EQ(eval_group(group_op(a, 0), a).rows(),
            eval_group(group_op(b, 0), b).rows());
}

TEST(OpsEvalTest, JoinInnerEquiNullsNeverMatch) {
  const Relation left = table(
      {{Value(L(1)), Value("a")}, {Value(L(2)), Value("b")}, {Value::null(), Value("n")}},
      {{"k", ValueType::kLong}, {"lv", ValueType::kChararray}});
  const Relation right = table(
      {{Value(L(1)), Value("x")}, {Value(L(1)), Value("y")}, {Value::null(), Value("m")}},
      {{"k", ValueType::kLong}, {"rv", ValueType::kChararray}});
  OpNode op;
  op.kind = OpKind::kJoin;
  op.left_keys = {0};
  op.right_keys = {0};
  op.schema = Schema::of({{"l::k", ValueType::kLong},
                          {"l::lv", ValueType::kChararray},
                          {"r::k", ValueType::kLong},
                          {"r::rv", ValueType::kChararray}});
  const Relation out = eval_join(op, left, right);
  ASSERT_EQ(out.size(), 2u);  // key 1 matches twice; nulls never match
  EXPECT_EQ(out.rows()[0].at(3).as_string(), "x");
  EXPECT_EQ(out.rows()[1].at(3).as_string(), "y");
}

TEST(OpsEvalTest, UnionConcatenates) {
  const Relation a = table({{Value(L(1))}}, {{"x", ValueType::kLong}});
  const Relation b = table({{Value(L(2))}, {Value(L(3))}},
                           {{"x", ValueType::kLong}});
  OpNode op;
  op.kind = OpKind::kUnion;
  op.schema = a.schema();
  const Relation out = eval_union(op, {&a, &b});
  EXPECT_EQ(out.size(), 3u);
}

TEST(OpsEvalTest, UnionChecksArity) {
  const Relation a = table({{Value(L(1))}}, {{"x", ValueType::kLong}});
  const Relation b = table({{Value(L(2)), Value(L(0))}},
                           {{"x", ValueType::kLong}, {"y", ValueType::kLong}});
  OpNode op;
  op.kind = OpKind::kUnion;
  op.schema = a.schema();
  EXPECT_THROW(eval_union(op, {&a, &b}), CheckError);
}

TEST(OpsEvalTest, DistinctRemovesDuplicates) {
  const Relation in = table({{Value(L(2))}, {Value(L(1))}, {Value(L(2))}},
                            {{"x", ValueType::kLong}});
  OpNode op;
  op.kind = OpKind::kDistinct;
  op.schema = in.schema();
  const Relation out = eval_distinct(op, in);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.rows()[0].at(0).as_long(), 1);  // sorted output
  EXPECT_EQ(out.rows()[1].at(0).as_long(), 2);
}

TEST(OpsEvalTest, OrderSortsWithTiebreak) {
  const Relation in = table(
      {{Value(L(1)), Value("b")}, {Value(L(2)), Value("a")}, {Value(L(1)), Value("a")}},
      {{"k", ValueType::kLong}, {"v", ValueType::kChararray}});
  OpNode op;
  op.kind = OpKind::kOrder;
  op.schema = in.schema();
  op.sort_keys = {{0, false}};  // k DESC
  const Relation out = eval_order(op, in);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.rows()[0].at(0).as_long(), 2);
  // Equal keys fall back to whole-tuple order: (1,"a") before (1,"b").
  EXPECT_EQ(out.rows()[1].at(1).as_string(), "a");
  EXPECT_EQ(out.rows()[2].at(1).as_string(), "b");
}

TEST(OpsEvalTest, LimitTruncates) {
  const Relation in = table({{Value(L(1))}, {Value(L(2))}, {Value(L(3))}},
                            {{"x", ValueType::kLong}});
  OpNode op;
  op.kind = OpKind::kLimit;
  op.schema = in.schema();
  op.limit = 2;
  EXPECT_EQ(eval_limit(op, in).size(), 2u);
  op.limit = 99;
  EXPECT_EQ(eval_limit(op, in).size(), 3u);
  op.limit = 0;
  EXPECT_EQ(eval_limit(op, in).size(), 0u);
}

TEST(OpsEvalTest, EvalOpDispatchRejectsStorage) {
  OpNode op;
  op.kind = OpKind::kLoad;
  EXPECT_THROW(eval_op(op, {}), CheckError);
}

}  // namespace
}  // namespace clusterbft::dataflow
