// The 1-thread-vs-N-thread determinism property (ISSUE 2 tentpole): the
// parallel task-execution backend must be invisible in every engine
// output. For pool sizes {1, 2, 8} and many seeds, verification-point
// digest streams, final outputs, task metrics, simulated-time accounting
// and scheduler decisions are asserted byte-identical to the sequential
// engine (threads = 0). A replica pair that diverged here would make an
// honest node look Byzantine, so any failure is a correctness bug, not a
// flaky test.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "baseline/presets.hpp"
#include "cluster/tracker.hpp"
#include "common/rng.hpp"
#include "core/controller.hpp"
#include "core/graph_analyzer.hpp"
#include "dataflow/parser.hpp"
#include "mapreduce/compiler.hpp"
#include "mapreduce/local_runner.hpp"
#include "protocol/seam.hpp"
#include "random_script.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"

namespace clusterbft {
namespace {

using cluster::ExecutionTracker;
using cluster::NodeId;
using cluster::TrackerConfig;
using mapreduce::MRJobSpec;

class ParallelExecTest : public ::testing::TestWithParam<std::size_t> {};

// ---------------------------------------------------------------------
// Local runner: random plans, swept seeds.

struct LocalPass {
  std::vector<mapreduce::DigestReport> digests;
  std::map<std::string, dataflow::Relation> outputs;
  mapreduce::TaskMetrics totals;
};

LocalPass local_pass(std::uint64_t seed, std::size_t threads) {
  Rng rng(seed);
  const dataflow::Relation input = testgen::random_table(rng, 250);
  const std::string script = testgen::random_script(rng);

  const auto plan = dataflow::parse_script(script);
  const auto ratios =
      core::compute_input_ratios(plan, {{"ta", input.byte_size()}});
  const auto marks = core::mark_verification_points(
      plan, ratios, 2, core::AdversaryModel::kWeak);
  std::vector<mapreduce::VerificationPoint> vps;
  for (const dataflow::OpId v : marks) vps.push_back({v, 32});
  const auto dag = mapreduce::compile(plan, vps, {.sid_prefix = "par"});

  mapreduce::Dfs dfs(2048);
  dfs.write("ta", input);
  auto run =
      mapreduce::run_job_dag_local(plan, dag, dfs, {.threads = threads});
  LocalPass pass;
  pass.digests = std::move(run.digests);
  pass.outputs = std::move(run.outputs);
  pass.totals = run.totals;
  return pass;
}

TEST_P(ParallelExecTest, LocalRunnerBitIdenticalToSequentialEngine) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed) + ", threads " +
                 std::to_string(GetParam()));
    const LocalPass seq = local_pass(seed, 0);
    const LocalPass par = local_pass(seed, GetParam());

    ASSERT_FALSE(seq.digests.empty());
    ASSERT_EQ(seq.digests.size(), par.digests.size());
    for (std::size_t i = 0; i < seq.digests.size(); ++i) {
      EXPECT_EQ(seq.digests[i].key, par.digests[i].key)
          << seq.digests[i].key.to_string();
      EXPECT_EQ(seq.digests[i].digest, par.digests[i].digest)
          << seq.digests[i].key.to_string();
      EXPECT_EQ(seq.digests[i].record_count, par.digests[i].record_count);
    }

    // Outputs byte-identical *including row order* — the parallel runner
    // must reproduce the sequential task order exactly, not merely the
    // same set of rows.
    ASSERT_EQ(seq.outputs.size(), par.outputs.size());
    for (const auto& [path, rel] : seq.outputs) {
      ASSERT_TRUE(par.outputs.contains(path)) << path;
      EXPECT_EQ(rel.rows(), par.outputs.at(path).rows()) << path;
    }

    EXPECT_EQ(seq.totals.input_bytes, par.totals.input_bytes);
    EXPECT_EQ(seq.totals.output_bytes, par.totals.output_bytes);
    EXPECT_EQ(seq.totals.digested_bytes, par.totals.digested_bytes);
    EXPECT_EQ(seq.totals.records_in, par.totals.records_in);
    EXPECT_EQ(seq.totals.records_out, par.totals.records_out);
  }
}

// ---------------------------------------------------------------------
// Execution tracker: digest stream, metrics and schedule under an
// adversarial cluster (commission faults on one node, digest lying on
// another — the lying path executes inline even under a pool, and the
// node RNG streams must stay aligned across pool sizes).

struct TrackerPass {
  std::vector<mapreduce::DigestReport> digest_log;
  std::vector<std::size_t> digest_run_ids;
  std::vector<NodeId> digest_nodes;
  std::vector<cluster::JobRunMetrics> metrics;
  std::vector<std::vector<dataflow::Tuple>> outputs;
};

TrackerPass tracker_pass(std::uint64_t seed, std::size_t threads) {
  cluster::EventSim sim;
  mapreduce::Dfs dfs(4096);
  workloads::TwitterConfig tw;
  tw.num_edges = 2000;
  tw.num_users = 300;
  dfs.write("twitter/edges", workloads::generate_twitter_edges(tw));

  const auto plan =
      dataflow::parse_script(workloads::twitter_follower_analysis());
  const auto probe = mapreduce::compile(plan, {}, {.sid_prefix = "p"});
  const std::vector<mapreduce::VerificationPoint> vps{
      {probe.jobs[0].branches[0].source_vertex, 64}};
  const auto dag = mapreduce::compile(plan, vps, {.sid_prefix = "p"});

  TrackerConfig cfg;
  cfg.num_nodes = 10;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.policies[2] = cluster::AdversaryPolicy{.commission_prob = 0.5};
  cfg.policies[4] = cluster::AdversaryPolicy{.commission_prob = 0.5,
                                             .lie_in_digest = true};
  ExecutionTracker tracker(sim, dfs, cfg);

  TrackerPass pass;
  tracker.on_digests = [&pass](std::vector<mapreduce::DigestReport>&& reports,
                               std::size_t run_id, NodeId nid) {
    for (const mapreduce::DigestReport& r : reports) {
      pass.digest_log.push_back(r);
      pass.digest_run_ids.push_back(run_id);
      pass.digest_nodes.push_back(nid);
    }
  };

  std::vector<std::size_t> runs;
  for (std::size_t replica = 0; replica < 2; ++replica) {
    const std::string scope = "w" + std::to_string(replica) + "/";
    for (const MRJobSpec& spec : dag.jobs) {
      std::vector<std::string> inputs;
      for (const auto& b : spec.branches) {
        const bool load =
            plan.node(b.source_vertex).kind == dataflow::OpKind::kLoad;
        inputs.push_back(load ? b.input_path : scope + b.input_path);
      }
      runs.push_back(tracker.submit(plan, spec, replica, inputs,
                                    scope + spec.output_path));
      sim.run();
    }
  }
  for (const std::size_t r : runs) {
    pass.metrics.push_back(tracker.run_metrics(r));
    pass.outputs.push_back(dfs.read(tracker.run_output_path(r)).rows());
  }
  return pass;
}

TEST_P(ParallelExecTest, TrackerBitIdenticalToSequentialEngine) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed) + ", threads " +
                 std::to_string(GetParam()));
    const TrackerPass seq = tracker_pass(seed, 0);
    const TrackerPass par = tracker_pass(seed, GetParam());

    ASSERT_FALSE(seq.digest_log.empty());
    ASSERT_EQ(seq.digest_log.size(), par.digest_log.size());
    for (std::size_t i = 0; i < seq.digest_log.size(); ++i) {
      EXPECT_EQ(seq.digest_log[i].key, par.digest_log[i].key);
      EXPECT_EQ(seq.digest_log[i].digest, par.digest_log[i].digest);
      EXPECT_EQ(seq.digest_log[i].replica, par.digest_log[i].replica);
      EXPECT_EQ(seq.digest_log[i].record_count, par.digest_log[i].record_count);
    }
    EXPECT_EQ(seq.digest_run_ids, par.digest_run_ids);
    EXPECT_EQ(seq.digest_nodes, par.digest_nodes);

    ASSERT_EQ(seq.metrics.size(), par.metrics.size());
    for (std::size_t i = 0; i < seq.metrics.size(); ++i) {
      // Exact equality on doubles on purpose: the simulated-time
      // accounting (float addition order included) must not drift.
      EXPECT_EQ(seq.metrics[i].submit_time, par.metrics[i].submit_time);
      EXPECT_EQ(seq.metrics[i].finish_time, par.metrics[i].finish_time);
      EXPECT_EQ(seq.metrics[i].cpu_seconds, par.metrics[i].cpu_seconds);
      EXPECT_EQ(seq.metrics[i].file_read, par.metrics[i].file_read);
      EXPECT_EQ(seq.metrics[i].file_write, par.metrics[i].file_write);
      EXPECT_EQ(seq.metrics[i].hdfs_write, par.metrics[i].hdfs_write);
      EXPECT_EQ(seq.metrics[i].digested, par.metrics[i].digested);
      EXPECT_EQ(seq.metrics[i].tasks_run, par.metrics[i].tasks_run);
    }
    EXPECT_EQ(seq.outputs, par.outputs);
  }
}

// ---------------------------------------------------------------------
// Full control tier (job initiator + verifier + fault analyzer) on top
// of the parallel backend: suspicion and verification decisions must not
// depend on the pool size either.

core::ScriptResult controller_pass(std::uint64_t seed, std::size_t threads) {
  cluster::EventSim sim;
  mapreduce::Dfs dfs(8192);
  TrackerConfig cfg;
  cfg.num_nodes = 10;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.policies[2] = cluster::AdversaryPolicy{.commission_prob = 0.6};
  ExecutionTracker tracker(sim, dfs, cfg);
  workloads::TwitterConfig tw;
  tw.num_edges = 1000;
  tw.num_users = 150;
  dfs.write("twitter/edges", workloads::generate_twitter_edges(tw));
  protocol::LoopbackSeam seam(tracker);
  core::ClusterBft controller(sim, dfs, seam.transport, seam.programs);
  return controller.execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "det", 1, 2, 1));
}

TEST_P(ParallelExecTest, ControlTierBitIdenticalToSequentialEngine) {
  const auto seq = controller_pass(7, 0);
  const auto par = controller_pass(7, GetParam());
  EXPECT_EQ(seq.verified, par.verified);
  EXPECT_EQ(seq.metrics.latency_s, par.metrics.latency_s);
  EXPECT_EQ(seq.metrics.cpu_seconds, par.metrics.cpu_seconds);
  EXPECT_EQ(seq.metrics.file_read, par.metrics.file_read);
  EXPECT_EQ(seq.metrics.hdfs_write, par.metrics.hdfs_write);
  EXPECT_EQ(seq.metrics.runs, par.metrics.runs);
  EXPECT_EQ(seq.metrics.digest_reports, par.metrics.digest_reports);
  EXPECT_EQ(seq.suspects, par.suspects);
  EXPECT_EQ(seq.commission_faults_seen, par.commission_faults_seen);
  ASSERT_EQ(seq.outputs.size(), par.outputs.size());
  for (const auto& [path, rel] : seq.outputs) {
    EXPECT_EQ(rel.rows(), par.outputs.at(path).rows()) << path;
  }
}

// ---------------------------------------------------------------------
// Scheduler safety re-check (mirrors TrackerTest.ReplicaPinningNever-
// MixesReplicasOnANode): the pinning invariant must hold when payloads
// run on the pool, since scheduling state is only mutated at submission
// time on the tracker thread.

TEST_P(ParallelExecTest, ReplicaPinningHoldsUnderParallelBackend) {
  cluster::EventSim sim;
  mapreduce::Dfs dfs(8192);
  workloads::TwitterConfig tw;
  tw.num_edges = 2000;
  tw.num_users = 300;
  dfs.write("twitter/edges", workloads::generate_twitter_edges(tw));
  const auto plan =
      dataflow::parse_script(workloads::twitter_follower_analysis());
  const auto dag = mapreduce::compile(plan, {}, {.sid_prefix = "p"});

  TrackerConfig cfg;
  cfg.num_nodes = 6;
  cfg.slots_per_node = 2;
  cfg.threads = GetParam();
  ExecutionTracker tracker(sim, dfs, cfg);

  const MRJobSpec& spec = dag.jobs[0];
  std::vector<std::size_t> runs;
  for (std::size_t replica = 0; replica < 3; ++replica) {
    const std::string scope = std::string(1, static_cast<char>('a' + replica)) + "/";
    std::vector<std::string> inputs;
    for (const auto& b : spec.branches) inputs.push_back(b.input_path);
    runs.push_back(tracker.submit(plan, spec, replica, inputs,
                                  scope + spec.output_path));
  }
  sim.run();
  for (const std::size_t r : runs) EXPECT_TRUE(tracker.run_complete(r));

  for (const std::size_t a : runs) {
    for (const std::size_t b : runs) {
      if (a >= b) continue;
      for (const NodeId n : tracker.run_nodes(a)) {
        EXPECT_EQ(tracker.run_nodes(b).count(n), 0u)
            << "node " << n << " served two replicas of the same sid";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Pools, ParallelExecTest,
                         ::testing::Values<std::size_t>(1, 2, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace clusterbft
