// The 1-thread-vs-N-thread determinism property (ISSUE 2 tentpole): the
// parallel task-execution backend must be invisible in every engine
// output. For pool sizes {1, 2, 8} and many seeds, verification-point
// digest streams, final outputs, task metrics, simulated-time accounting
// and scheduler decisions are asserted byte-identical to the sequential
// engine (threads = 0). A replica pair that diverged here would make an
// honest node look Byzantine, so any failure is a correctness bug, not a
// flaky test.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "baseline/presets.hpp"
#include "cluster/tracker.hpp"
#include "common/rng.hpp"
#include "core/controller.hpp"
#include "core/graph_analyzer.hpp"
#include "dataflow/parser.hpp"
#include "mapreduce/compiler.hpp"
#include "mapreduce/local_runner.hpp"
#include "protocol/seam.hpp"
#include "protocol/transport.hpp"
#include "random_script.hpp"
#include "workloads/airline.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"
#include "workloads/weather.hpp"

namespace clusterbft {
namespace {

using cluster::ExecutionTracker;
using cluster::NodeId;
using cluster::TrackerConfig;
using mapreduce::MRJobSpec;

class ParallelExecTest : public ::testing::TestWithParam<std::size_t> {};

// ---------------------------------------------------------------------
// Local runner: random plans, swept seeds.

struct LocalPass {
  std::vector<mapreduce::DigestReport> digests;
  std::map<std::string, dataflow::Relation> outputs;
  mapreduce::TaskMetrics totals;
};

LocalPass local_pass(std::uint64_t seed, std::size_t threads) {
  Rng rng(seed);
  const dataflow::Relation input = testgen::random_table(rng, 250);
  const std::string script = testgen::random_script(rng);

  const auto plan = dataflow::parse_script(script);
  const auto ratios =
      core::compute_input_ratios(plan, {{"ta", input.byte_size()}});
  const auto marks = core::mark_verification_points(
      plan, ratios, 2, core::AdversaryModel::kWeak);
  std::vector<mapreduce::VerificationPoint> vps;
  for (const dataflow::OpId v : marks) vps.push_back({v, 32});
  const auto dag = mapreduce::compile(plan, vps, {.sid_prefix = "par"});

  mapreduce::Dfs dfs(2048);
  dfs.write("ta", input);
  auto run =
      mapreduce::run_job_dag_local(plan, dag, dfs, {.threads = threads});
  LocalPass pass;
  pass.digests = std::move(run.digests);
  pass.outputs = std::move(run.outputs);
  pass.totals = run.totals;
  return pass;
}

TEST_P(ParallelExecTest, LocalRunnerBitIdenticalToSequentialEngine) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed) + ", threads " +
                 std::to_string(GetParam()));
    const LocalPass seq = local_pass(seed, 0);
    const LocalPass par = local_pass(seed, GetParam());

    ASSERT_FALSE(seq.digests.empty());
    ASSERT_EQ(seq.digests.size(), par.digests.size());
    for (std::size_t i = 0; i < seq.digests.size(); ++i) {
      EXPECT_EQ(seq.digests[i].key, par.digests[i].key)
          << seq.digests[i].key.to_string();
      EXPECT_EQ(seq.digests[i].digest, par.digests[i].digest)
          << seq.digests[i].key.to_string();
      EXPECT_EQ(seq.digests[i].record_count, par.digests[i].record_count);
    }

    // Outputs byte-identical *including row order* — the parallel runner
    // must reproduce the sequential task order exactly, not merely the
    // same set of rows.
    ASSERT_EQ(seq.outputs.size(), par.outputs.size());
    for (const auto& [path, rel] : seq.outputs) {
      ASSERT_TRUE(par.outputs.contains(path)) << path;
      EXPECT_EQ(rel.rows(), par.outputs.at(path).rows()) << path;
    }

    EXPECT_EQ(seq.totals.input_bytes, par.totals.input_bytes);
    EXPECT_EQ(seq.totals.output_bytes, par.totals.output_bytes);
    EXPECT_EQ(seq.totals.digested_bytes, par.totals.digested_bytes);
    EXPECT_EQ(seq.totals.records_in, par.totals.records_in);
    EXPECT_EQ(seq.totals.records_out, par.totals.records_out);
  }
}

// ---------------------------------------------------------------------
// Execution tracker: digest stream, metrics and schedule under an
// adversarial cluster (commission faults on one node, digest lying on
// another — the lying path executes inline even under a pool, and the
// node RNG streams must stay aligned across pool sizes).

struct TrackerPass {
  std::vector<mapreduce::DigestReport> digest_log;
  std::vector<std::size_t> digest_run_ids;
  std::vector<NodeId> digest_nodes;
  std::vector<cluster::JobRunMetrics> metrics;
  std::vector<std::vector<dataflow::Tuple>> outputs;
};

TrackerPass tracker_pass(std::uint64_t seed, std::size_t threads) {
  cluster::EventSim sim;
  mapreduce::Dfs dfs(4096);
  workloads::TwitterConfig tw;
  tw.num_edges = 2000;
  tw.num_users = 300;
  dfs.write("twitter/edges", workloads::generate_twitter_edges(tw));

  const auto plan =
      dataflow::parse_script(workloads::twitter_follower_analysis());
  const auto probe = mapreduce::compile(plan, {}, {.sid_prefix = "p"});
  const std::vector<mapreduce::VerificationPoint> vps{
      {probe.jobs[0].branches[0].source_vertex, 64}};
  const auto dag = mapreduce::compile(plan, vps, {.sid_prefix = "p"});

  TrackerConfig cfg;
  cfg.num_nodes = 10;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.policies[2] = cluster::AdversaryPolicy{.commission_prob = 0.5};
  cfg.policies[4] = cluster::AdversaryPolicy{.commission_prob = 0.5,
                                             .lie_in_digest = true};
  ExecutionTracker tracker(sim, dfs, cfg);

  TrackerPass pass;
  tracker.on_digests = [&pass](std::vector<mapreduce::DigestReport>&& reports,
                               std::size_t run_id, NodeId nid) {
    for (const mapreduce::DigestReport& r : reports) {
      pass.digest_log.push_back(r);
      pass.digest_run_ids.push_back(run_id);
      pass.digest_nodes.push_back(nid);
    }
  };

  std::vector<std::size_t> runs;
  for (std::size_t replica = 0; replica < 2; ++replica) {
    const std::string scope = "w" + std::to_string(replica) + "/";
    for (const MRJobSpec& spec : dag.jobs) {
      std::vector<std::string> inputs;
      for (const auto& b : spec.branches) {
        const bool load =
            plan.node(b.source_vertex).kind == dataflow::OpKind::kLoad;
        inputs.push_back(load ? b.input_path : scope + b.input_path);
      }
      runs.push_back(tracker.submit(plan, spec, replica, inputs,
                                    scope + spec.output_path));
      sim.run();
    }
  }
  for (const std::size_t r : runs) {
    pass.metrics.push_back(tracker.run_metrics(r));
    pass.outputs.push_back(dfs.read(tracker.run_output_path(r)).rows());
  }
  return pass;
}

TEST_P(ParallelExecTest, TrackerBitIdenticalToSequentialEngine) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed) + ", threads " +
                 std::to_string(GetParam()));
    const TrackerPass seq = tracker_pass(seed, 0);
    const TrackerPass par = tracker_pass(seed, GetParam());

    ASSERT_FALSE(seq.digest_log.empty());
    ASSERT_EQ(seq.digest_log.size(), par.digest_log.size());
    for (std::size_t i = 0; i < seq.digest_log.size(); ++i) {
      EXPECT_EQ(seq.digest_log[i].key, par.digest_log[i].key);
      EXPECT_EQ(seq.digest_log[i].digest, par.digest_log[i].digest);
      EXPECT_EQ(seq.digest_log[i].replica, par.digest_log[i].replica);
      EXPECT_EQ(seq.digest_log[i].record_count, par.digest_log[i].record_count);
    }
    EXPECT_EQ(seq.digest_run_ids, par.digest_run_ids);
    EXPECT_EQ(seq.digest_nodes, par.digest_nodes);

    ASSERT_EQ(seq.metrics.size(), par.metrics.size());
    for (std::size_t i = 0; i < seq.metrics.size(); ++i) {
      // Exact equality on doubles on purpose: the simulated-time
      // accounting (float addition order included) must not drift.
      EXPECT_EQ(seq.metrics[i].submit_time, par.metrics[i].submit_time);
      EXPECT_EQ(seq.metrics[i].finish_time, par.metrics[i].finish_time);
      EXPECT_EQ(seq.metrics[i].cpu_seconds, par.metrics[i].cpu_seconds);
      EXPECT_EQ(seq.metrics[i].file_read, par.metrics[i].file_read);
      EXPECT_EQ(seq.metrics[i].file_write, par.metrics[i].file_write);
      EXPECT_EQ(seq.metrics[i].hdfs_write, par.metrics[i].hdfs_write);
      EXPECT_EQ(seq.metrics[i].digested, par.metrics[i].digested);
      EXPECT_EQ(seq.metrics[i].tasks_run, par.metrics[i].tasks_run);
    }
    EXPECT_EQ(seq.outputs, par.outputs);
  }
}

// ---------------------------------------------------------------------
// Full control tier (job initiator + verifier + fault analyzer) on top
// of the parallel backend: suspicion and verification decisions must not
// depend on the pool size either.

core::ScriptResult controller_pass(std::uint64_t seed, std::size_t threads) {
  cluster::EventSim sim;
  mapreduce::Dfs dfs(8192);
  TrackerConfig cfg;
  cfg.num_nodes = 10;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.policies[2] = cluster::AdversaryPolicy{.commission_prob = 0.6};
  ExecutionTracker tracker(sim, dfs, cfg);
  workloads::TwitterConfig tw;
  tw.num_edges = 1000;
  tw.num_users = 150;
  dfs.write("twitter/edges", workloads::generate_twitter_edges(tw));
  protocol::LoopbackSeam seam(tracker);
  core::ClusterBft controller(sim, dfs, seam.transport, seam.programs);
  return controller.execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "det", 1, 2, 1));
}

TEST_P(ParallelExecTest, ControlTierBitIdenticalToSequentialEngine) {
  const auto seq = controller_pass(7, 0);
  const auto par = controller_pass(7, GetParam());
  EXPECT_EQ(seq.verified, par.verified);
  EXPECT_EQ(seq.metrics.latency_s, par.metrics.latency_s);
  EXPECT_EQ(seq.metrics.cpu_seconds, par.metrics.cpu_seconds);
  EXPECT_EQ(seq.metrics.file_read, par.metrics.file_read);
  EXPECT_EQ(seq.metrics.hdfs_write, par.metrics.hdfs_write);
  EXPECT_EQ(seq.metrics.runs, par.metrics.runs);
  EXPECT_EQ(seq.metrics.digest_reports, par.metrics.digest_reports);
  EXPECT_EQ(seq.suspects, par.suspects);
  EXPECT_EQ(seq.commission_faults_seen, par.commission_faults_seen);
  ASSERT_EQ(seq.outputs.size(), par.outputs.size());
  for (const auto& [path, rel] : seq.outputs) {
    EXPECT_EQ(rel.rows(), par.outputs.at(path).rows()) << path;
  }
}

// ---------------------------------------------------------------------
// Scheduler safety re-check (mirrors TrackerTest.ReplicaPinningNever-
// MixesReplicasOnANode): the pinning invariant must hold when payloads
// run on the pool, since scheduling state is only mutated at submission
// time on the tracker thread.

TEST_P(ParallelExecTest, ReplicaPinningHoldsUnderParallelBackend) {
  cluster::EventSim sim;
  mapreduce::Dfs dfs(8192);
  workloads::TwitterConfig tw;
  tw.num_edges = 2000;
  tw.num_users = 300;
  dfs.write("twitter/edges", workloads::generate_twitter_edges(tw));
  const auto plan =
      dataflow::parse_script(workloads::twitter_follower_analysis());
  const auto dag = mapreduce::compile(plan, {}, {.sid_prefix = "p"});

  TrackerConfig cfg;
  cfg.num_nodes = 6;
  cfg.slots_per_node = 2;
  cfg.threads = GetParam();
  ExecutionTracker tracker(sim, dfs, cfg);

  const MRJobSpec& spec = dag.jobs[0];
  std::vector<std::size_t> runs;
  for (std::size_t replica = 0; replica < 3; ++replica) {
    const std::string scope = std::string(1, static_cast<char>('a' + replica)) + "/";
    std::vector<std::string> inputs;
    for (const auto& b : spec.branches) inputs.push_back(b.input_path);
    runs.push_back(tracker.submit(plan, spec, replica, inputs,
                                  scope + spec.output_path));
  }
  sim.run();
  for (const std::size_t r : runs) EXPECT_TRUE(tracker.run_complete(r));

  for (const std::size_t a : runs) {
    for (const std::size_t b : runs) {
      if (a >= b) continue;
      for (const NodeId n : tracker.run_nodes(a)) {
        EXPECT_EQ(tracker.run_nodes(b).count(n), 0u)
            << "node " << n << " served two replicas of the same sid";
      }
    }
  }
}

// ---------------------------------------------------------------------
// Pipelined DAG execution (ISSUE 4): the pipeline-width knob and the
// offline digest-comparison pool must be invisible in every verification
// artefact — wire digest stream, verified outputs, suspicion ledger,
// fault counts — across widths {1, 2, 8, unbounded} x pool sizes x seeds.
// Only wall-clock / simulated latency may move.

/// Loopback transport that additionally records every digest report
/// crossing into the control tier: the on-the-wire evidence stream the
/// sweep compares across pipeline widths.
class SnoopLoopback final : public protocol::Transport {
 public:
  std::vector<mapreduce::DigestReport> digest_log;

  void to_control(protocol::Message m) override {
    if (const auto* b = std::get_if<protocol::DigestBatch>(&m)) {
      digest_log.insert(digest_log.end(), b->reports.begin(),
                        b->reports.end());
    }
    deliver_control(std::move(m));
  }
  void to_computation(protocol::Message m) override {
    deliver_computation(std::move(m));
  }
};

struct PipelinePass {
  core::ScriptResult result;
  /// Wire digest evidence as an order-free multiset: widths reorder run
  /// completion, so streams are compared as sets of (key, digest,
  /// replica, count) lines, which must match exactly.
  std::multiset<std::string> digests;
  std::vector<core::AuditEvent> rollback_events;
};

PipelinePass pipeline_pass(const std::string& script, std::uint64_t seed,
                           std::size_t width, std::size_t threads,
                           std::size_t verifier_threads, std::size_t replicas,
                           TrackerConfig cfg, double decision_latency_s = 0) {
  cluster::EventSim sim;
  mapreduce::Dfs dfs(8192);
  cfg.seed = seed;
  cfg.threads = threads;
  ExecutionTracker tracker(sim, dfs, cfg);
  workloads::AirlineConfig air;
  air.num_flights = 1200;
  air.num_airports = 25;
  dfs.write("airline/flights", workloads::generate_flights(air));
  workloads::WeatherConfig wx;
  wx.num_stations = 150;
  wx.readings_per_station = 10;
  dfs.write("weather/gsod", workloads::generate_weather(wx));

  // The LoopbackSeam composition, with the snooping transport spliced in.
  SnoopLoopback transport;
  protocol::ProgramRegistry programs;
  protocol::ComputationService service(tracker, transport, programs);
  core::ClusterBft controller(sim, dfs, transport, programs);

  core::ClientRequest req =
      baseline::cluster_bft(script, "pipe", 1, replicas, 2);
  req.pipeline_width = width;
  req.verifier_threads = verifier_threads;
  req.decision_latency_s = decision_latency_s;

  PipelinePass pass;
  pass.result = controller.execute(req);
  for (const mapreduce::DigestReport& r : transport.digest_log) {
    pass.digests.insert(r.key.to_string() + "|" + r.digest.hex() + "|r" +
                        std::to_string(r.replica) + "|" +
                        std::to_string(r.record_count));
  }
  pass.rollback_events =
      controller.audit_log().events_of(core::AuditEvent::Kind::kRollback);
  return pass;
}

void expect_same_decisions(const PipelinePass& a, const PipelinePass& b) {
  EXPECT_EQ(a.result.verified, b.result.verified);
  EXPECT_EQ(a.digests, b.digests);
  EXPECT_EQ(a.result.suspects, b.result.suspects);
  EXPECT_EQ(a.result.commission_faults_seen, b.result.commission_faults_seen);
  EXPECT_EQ(a.result.omission_faults_seen, b.result.omission_faults_seen);
  EXPECT_EQ(a.result.metrics.runs, b.result.metrics.runs);
  EXPECT_EQ(a.result.metrics.waves, b.result.metrics.waves);
  EXPECT_EQ(a.result.metrics.rollbacks, b.result.metrics.rollbacks);
  EXPECT_EQ(a.result.metrics.digest_reports, b.result.metrics.digest_reports);
  EXPECT_EQ(a.result.metrics.cpu_seconds, b.result.metrics.cpu_seconds);
  EXPECT_EQ(a.result.metrics.file_read, b.result.metrics.file_read);
  EXPECT_EQ(a.result.metrics.hdfs_write, b.result.metrics.hdfs_write);
  ASSERT_EQ(a.result.outputs.size(), b.result.outputs.size());
  for (const auto& [path, rel] : a.result.outputs) {
    ASSERT_TRUE(b.result.outputs.contains(path)) << path;
    EXPECT_EQ(rel.rows(), b.result.outputs.at(path).rows()) << path;
  }
}

TEST_P(ParallelExecTest, PipelineWidthInvisibleInDigestsOutputsAndLedger) {
  // The multi-store airline DAG has real job-level parallelism, so the
  // width cap genuinely changes the dispatch schedule. Seeds are offset
  // per pool size so the suite sweeps 18 distinct seeds overall.
  const std::string script = workloads::airline_top20_analysis();
  TrackerConfig cfg;
  cfg.num_nodes = 12;
  const std::uint64_t base = GetParam() * 100;
  for (std::uint64_t seed = base + 1; seed <= base + 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed) + ", threads " +
                 std::to_string(GetParam()));
    // Reference: strictly serial dispatch (width 1), inline execution,
    // inline digest comparison.
    const PipelinePass serial =
        pipeline_pass(script, seed, 1, 0, 0, 2, cfg);
    ASSERT_TRUE(serial.result.verified);
    ASSERT_FALSE(serial.digests.empty());

    PipelinePass widest;
    for (const std::size_t width : {std::size_t{0}, std::size_t{2},
                                    std::size_t{8}}) {
      SCOPED_TRACE("width " + std::to_string(width));
      PipelinePass p = pipeline_pass(script, seed, width, GetParam(),
                                     GetParam(), 2, cfg);
      expect_same_decisions(serial, p);
      if (width == 8) widest = std::move(p);
    }

    // Fixed width across pool sizes is the stronger contract: even the
    // simulated-time accounting must be bit-identical.
    const PipelinePass w8_seq = pipeline_pass(script, seed, 8, 0, 0, 2, cfg);
    expect_same_decisions(w8_seq, widest);
    EXPECT_EQ(w8_seq.result.metrics.latency_s,
              widest.result.metrics.latency_s);

    // Overlapped dispatch must never be slower than the serial schedule.
    EXPECT_GE(serial.result.metrics.latency_s,
              w8_seq.result.metrics.latency_s);
  }
}

TEST_P(ParallelExecTest, LateMismatchRollsBackOnlyTaintedRuns) {
  // Node 0 always corrupts and runs 4x faster than the honest nodes, and
  // the verification decision takes a simulated control-tier agreement
  // round — so the wave node 0 serves materialises its (tainted) outputs
  // and dispatches downstream jobs before the offline comparison can see
  // the mismatch, at every pipeline width (the weather script is a
  // linear two-job chain, so even width 1 dispatches the tainted
  // successor immediately). This is the late-mismatch case targeted
  // rollback exists for.
  const std::string script = workloads::weather_average_analysis();
  const double kDecision = 2.0;
  TrackerConfig honest_cfg;
  honest_cfg.num_nodes = 12;
  const PipelinePass honest = pipeline_pass(script, 5, 0, GetParam(),
                                            GetParam(), 3, honest_cfg,
                                            kDecision);
  ASSERT_TRUE(honest.result.verified);
  EXPECT_EQ(honest.result.metrics.rollbacks, 0u);
  EXPECT_TRUE(honest.rollback_events.empty());

  TrackerConfig cfg;
  cfg.num_nodes = 12;
  cfg.policies[0] = cluster::AdversaryPolicy{.commission_prob = 1.0};
  cfg.speeds[0] = 4.0;
  for (const std::size_t width : {std::size_t{0}, std::size_t{1},
                                  std::size_t{8}}) {
    SCOPED_TRACE("width " + std::to_string(width) + ", threads " +
                 std::to_string(GetParam()));
    const PipelinePass p = pipeline_pass(script, 5, width, GetParam(),
                                         GetParam(), 3, cfg, kDecision);

    // The script still verifies, from the two honest waves.
    EXPECT_TRUE(p.result.verified);
    EXPECT_GE(p.result.commission_faults_seen, 1u);

    // The tainted downstream runs were rolled back and re-dispatched —
    // and only those: no extra wave was needed, so the honest chains
    // were never disturbed.
    EXPECT_GE(p.result.metrics.rollbacks, 1u);
    EXPECT_FALSE(p.rollback_events.empty());
    EXPECT_LT(p.result.metrics.rollbacks, p.result.metrics.runs);
    EXPECT_EQ(p.result.metrics.waves, 3u);

    // Rollback is invisible in the verified outputs: byte-identical to
    // the all-honest cluster.
    ASSERT_EQ(honest.result.outputs.size(), p.result.outputs.size());
    for (const auto& [path, rel] : honest.result.outputs) {
      ASSERT_TRUE(p.result.outputs.contains(path)) << path;
      EXPECT_EQ(rel.rows(), p.result.outputs.at(path).rows()) << path;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Pools, ParallelExecTest,
                         ::testing::Values<std::size_t>(1, 2, 8),
                         [](const auto& param_info) {
                           return "threads" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace clusterbft
