// Audit-trail and cluster-elasticity tests.
#include <gtest/gtest.h>

#include "baseline/presets.hpp"
#include "cluster/tracker.hpp"
#include "core/audit.hpp"
#include "core/controller.hpp"
#include "protocol/seam.hpp"
#include "workloads/scripts.hpp"
#include "workloads/twitter.hpp"

namespace clusterbft::core {
namespace {

using cluster::AdversaryPolicy;
using cluster::EventSim;
using cluster::ExecutionTracker;
using cluster::NodeId;
using cluster::TrackerConfig;

struct World {
  EventSim sim;
  mapreduce::Dfs dfs{16384};
  std::unique_ptr<ExecutionTracker> tracker;
  std::unique_ptr<protocol::LoopbackSeam> seam;
  std::unique_ptr<ClusterBft> controller;

  explicit World(TrackerConfig cfg = {}) {
    tracker = std::make_unique<ExecutionTracker>(sim, dfs, cfg);
    seam = std::make_unique<protocol::LoopbackSeam>(*tracker);
    controller = std::make_unique<ClusterBft>(sim, dfs, seam->transport,
                                              seam->programs);
    workloads::TwitterConfig tw;
    tw.num_edges = 1500;
    tw.num_users = 200;
    dfs.write("twitter/edges", workloads::generate_twitter_edges(tw));
  }
};

TEST(AuditTest, CleanRunRecordsSubmissionVerificationCompletion) {
  World w;
  const auto res = w.controller->execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "clean", 1, 2, 1));
  ASSERT_TRUE(res.verified);

  const AuditLog& log = w.controller->audit_log();
  ASSERT_GE(log.events().size(), 3u);
  EXPECT_EQ(log.events().front().kind, AuditEvent::Kind::kScriptSubmitted);
  EXPECT_EQ(log.events().back().kind, AuditEvent::Kind::kScriptCompleted);
  EXPECT_EQ(log.events_of(AuditEvent::Kind::kJobVerified).size(), 1u);
  EXPECT_TRUE(log.events_of(AuditEvent::Kind::kCommissionFault).empty());
  // Times are monotone.
  for (std::size_t i = 1; i < log.events().size(); ++i) {
    EXPECT_LE(log.events()[i - 1].time, log.events()[i].time);
  }
}

TEST(AuditTest, CommissionFaultAttributedWithNodes) {
  TrackerConfig cfg;
  cfg.num_nodes = 10;
  cfg.policies[1] = AdversaryPolicy{.commission_prob = 1.0};
  World w(cfg);
  const auto res = w.controller->execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "faulty", 1, 2, 1));
  ASSERT_TRUE(res.verified);

  const auto faults =
      w.controller->audit_log().events_of(AuditEvent::Kind::kCommissionFault);
  ASSERT_FALSE(faults.empty());
  EXPECT_TRUE(faults[0].nodes.count(1));
  // Per-node query finds the event too.
  EXPECT_FALSE(w.controller->audit_log().events_involving(1).empty());
}

TEST(AuditTest, PersistsAcrossScriptsAndRenders) {
  World w;
  w.controller->execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "one", 1, 2, 1));
  const std::size_t after_first = w.controller->audit_log().events().size();
  w.controller->execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "two", 1, 2, 1));
  EXPECT_GT(w.controller->audit_log().events().size(), after_first);

  const std::string text = w.controller->audit_log().to_string();
  EXPECT_NE(text.find("script-submitted"), std::string::npos);
  EXPECT_NE(text.find("job-verified"), std::string::npos);
  // Truncated rendering keeps only the tail.
  const std::string tail = w.controller->audit_log().to_string(1);
  EXPECT_NE(tail.find("script-completed"), std::string::npos);
  EXPECT_EQ(tail.find("script-submitted"), std::string::npos);
}

TEST(ElasticityTest, AddedNodesTakeWork) {
  TrackerConfig cfg;
  cfg.num_nodes = 2;  // deliberately too small for r=2 disjoint replicas
  cfg.slots_per_node = 1;
  World w(cfg);

  // Grow the cluster, then run: the replicas spread across old and new
  // nodes.
  w.tracker->add_nodes(6);
  EXPECT_EQ(w.tracker->resources().size(), 8u);
  const auto res = w.controller->execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "grown", 1, 2, 1));
  EXPECT_TRUE(res.verified);
}

TEST(ElasticityTest, AddedByzantineNodeIsCaught) {
  TrackerConfig cfg;
  cfg.num_nodes = 6;
  World w(cfg);
  const NodeId bad = w.tracker->add_nodes(
      2, 0, AdversaryPolicy{.commission_prob = 1.0});
  const auto res = w.controller->execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "joined", 1, 2, 1));
  ASSERT_TRUE(res.verified);
  // If the newcomer got work, its corruption was detected and attributed.
  if (res.commission_faults_seen > 0) {
    bool newcomer_suspected = false;
    for (NodeId n : res.suspects) newcomer_suspected |= n >= bad;
    EXPECT_TRUE(newcomer_suspected);
  }
}

TEST(ElasticityTest, DrainedNodeGetsNoNewTasks) {
  TrackerConfig cfg;
  cfg.num_nodes = 6;
  World w(cfg);
  w.tracker->drain_node(0);
  const auto res = w.controller->execute(baseline::cluster_bft(
      workloads::twitter_follower_analysis(), "drained", 1, 2, 1));
  ASSERT_TRUE(res.verified);
  for (std::size_t run = 0; run < res.metrics.runs; ++run) {
    EXPECT_EQ(w.tracker->run_nodes(run).count(0), 0u);
  }
}

}  // namespace
}  // namespace clusterbft::core
