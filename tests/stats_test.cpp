#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace clusterbft {
namespace {

TEST(StatsTest, Mean) {
  EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, MeanOfEmptyThrows) {
  EXPECT_THROW(mean({}), CheckError);
}

TEST(StatsTest, VarianceAndStddev) {
  EXPECT_DOUBLE_EQ(variance({5.0, 5.0, 5.0}), 0.0);
  // Population variance of {1,3} is 1.
  EXPECT_DOUBLE_EQ(variance({1.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(stddev({1.0, 3.0}), 1.0);
}

TEST(StatsTest, Median) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(StatsTest, Percentile) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
}

TEST(StatsTest, PercentileValidatesInput) {
  EXPECT_THROW(percentile({}, 50), CheckError);
  EXPECT_THROW(percentile({1.0}, -1), CheckError);
  EXPECT_THROW(percentile({1.0}, 101), CheckError);
}

TEST(StatsTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KiB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.5 MiB");
}

TEST(StatsTest, FormatMultiplier) {
  EXPECT_EQ(format_multiplier(3.456), "3.5x");
  EXPECT_EQ(format_multiplier(1.0), "1.0x");
}

}  // namespace
}  // namespace clusterbft
