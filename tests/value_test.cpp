#include "dataflow/value.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace clusterbft::dataflow {
namespace {

Bag make_bag(std::vector<Tuple> ts) {
  return std::make_shared<const std::vector<Tuple>>(std::move(ts));
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::null().is_null());
  EXPECT_EQ(Value(std::int64_t{5}).as_long(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
}

TEST(ValueTest, AccessorTypeMismatchThrows) {
  EXPECT_THROW(Value("hi").as_long(), CheckError);
  EXPECT_THROW(Value(std::int64_t{1}).as_string(), CheckError);
  EXPECT_THROW(Value("hi").to_double(), CheckError);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(std::int64_t{2}), Value(2.0));
  EXPECT_TRUE((Value(std::int64_t{1}) <=> Value(1.5)) < 0);
  EXPECT_TRUE((Value(2.5) <=> Value(std::int64_t{2})) > 0);
}

TEST(ValueTest, OrderingAcrossTypes) {
  // null < numeric < chararray < bag.
  EXPECT_TRUE((Value::null() <=> Value(std::int64_t{0})) < 0);
  EXPECT_TRUE((Value(std::int64_t{999}) <=> Value("a")) < 0);
  EXPECT_TRUE((Value("zzz") <=> Value(make_bag({}))) < 0);
}

TEST(ValueTest, StringOrdering) {
  EXPECT_TRUE((Value("abc") <=> Value("abd")) < 0);
  EXPECT_EQ(Value("abc"), Value("abc"));
}

TEST(ValueTest, BagOrderingBySizeThenContent) {
  const Bag small = make_bag({Tuple({Value(std::int64_t{9})})});
  const Bag big = make_bag({Tuple({Value(std::int64_t{1})}),
                            Tuple({Value(std::int64_t{1})})});
  EXPECT_TRUE((Value(small) <=> Value(big)) < 0);

  const Bag a = make_bag({Tuple({Value(std::int64_t{1})})});
  const Bag b = make_bag({Tuple({Value(std::int64_t{2})})});
  EXPECT_TRUE((Value(a) <=> Value(b)) < 0);
  EXPECT_EQ(Value(a), Value(make_bag({Tuple({Value(std::int64_t{1})})})));
}

TEST(ValueTest, SerializationDistinguishesTypes) {
  // The long 1 and the string "1" must not collide in digests.
  std::string a, b;
  Value(std::int64_t{1}).serialize(a);
  Value("1").serialize(b);
  EXPECT_NE(a, b);
}

TEST(ValueTest, SerializationDistinguishesNullFromZero) {
  std::string a, b;
  Value::null().serialize(a);
  Value(std::int64_t{0}).serialize(b);
  EXPECT_NE(a, b);
}

TEST(ValueTest, SerializationIsInjectiveOnSamples) {
  std::vector<Value> values{
      Value::null(),        Value(std::int64_t{0}),  Value(std::int64_t{1}),
      Value(std::int64_t{-1}), Value(0.0),           Value(1.0),
      Value(0.1),           Value(""),               Value("a"),
      Value("ab"),          Value(make_bag({})),
      Value(make_bag({Tuple({Value(std::int64_t{1})})}))};
  std::set<std::string> seen;
  for (const Value& v : values) {
    std::string s;
    v.serialize(s);
    EXPECT_TRUE(seen.insert(s).second) << "collision for " << v.to_string();
  }
}

TEST(ValueTest, DoubleSerializationRoundTrips) {
  // %.17g must distinguish adjacent doubles.
  std::string a, b;
  Value(0.1).serialize(a);
  Value(0.1 + 1e-17).serialize(b);  // same double after rounding
  Value x(0.30000000000000004);     // 0.1+0.2
  Value y(0.3);
  std::string sx, sy;
  x.serialize(sx);
  y.serialize(sy);
  EXPECT_NE(sx, sy);
}

TEST(TupleTest, ComparisonIsLexicographic) {
  const Tuple a({Value(std::int64_t{1}), Value("b")});
  const Tuple b({Value(std::int64_t{1}), Value("c")});
  const Tuple c({Value(std::int64_t{1})});
  EXPECT_TRUE((a <=> b) < 0);
  EXPECT_TRUE((c <=> a) < 0);  // prefix sorts first
  EXPECT_TRUE((a <=> Tuple({Value(std::int64_t{1}), Value("b")})) == 0);
}

TEST(TupleTest, AtBoundsChecked) {
  Tuple t({Value(std::int64_t{1})});
  EXPECT_THROW(t.at(1), CheckError);
}

TEST(TupleTest, KeyHashDeterministicAndPrefixSensitive) {
  const Tuple t({Value(std::int64_t{42}), Value("x")});
  EXPECT_EQ(tuple_key_hash(t, 1), tuple_key_hash(t, 1));
  const Tuple u({Value(std::int64_t{42}), Value("y")});
  EXPECT_EQ(tuple_key_hash(t, 1), tuple_key_hash(u, 1));  // same prefix
  EXPECT_NE(tuple_key_hash(t, 0), tuple_key_hash(u, 0));  // whole tuple
}

TEST(TupleTest, SerializeTupleConcatenatesFields) {
  const Tuple t({Value(std::int64_t{1}), Value("a")});
  std::string expect;
  t.at(0).serialize(expect);
  t.at(1).serialize(expect);
  EXPECT_EQ(serialize_tuple(t), expect);
}

}  // namespace
}  // namespace clusterbft::dataflow
