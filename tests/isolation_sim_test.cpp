// §6.3 fault-isolation simulator tests.
#include "sim/isolation_sim.hpp"

#include <gtest/gtest.h>

namespace clusterbft::sim {
namespace {

IsolationSimConfig base(std::size_t f, double p, std::uint64_t seed = 1) {
  IsolationSimConfig cfg;
  cfg.f = f;
  cfg.replicas = (f == 1) ? 4 : 7;  // the paper's choices
  cfg.commission_prob = p;
  cfg.seed = seed;
  cfg.max_completed_jobs = 200;
  return cfg;
}

TEST(IsolationSimTest, AlwaysFaultyNodeIsolatesWithinFewJobs) {
  const auto res = run_isolation_sim(base(1, 1.0));
  ASSERT_TRUE(res.jobs_until_saturation.has_value());
  EXPECT_LE(*res.jobs_until_saturation, 20u);
  EXPECT_TRUE(res.suspects_cover_observed_faulty);
}

TEST(IsolationSimTest, NeverFaultyNodeNeverObserved) {
  const auto res = run_isolation_sim(base(1, 0.0));
  EXPECT_FALSE(res.jobs_until_saturation.has_value());
  EXPECT_EQ(res.commission_observations, 0u);
  EXPECT_TRUE(res.final_suspects.empty());
}

TEST(IsolationSimTest, HigherProbabilityIsolatesFaster) {
  // Averaged over seeds, p = 0.9 saturates in no more jobs than p = 0.2
  // (the Fig. 11 trend).
  double slow_total = 0, fast_total = 0;
  int slow_n = 0, fast_n = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto slow = run_isolation_sim(base(1, 0.2, seed));
    const auto fast = run_isolation_sim(base(1, 0.9, seed));
    if (slow.jobs_until_saturation) {
      slow_total += static_cast<double>(*slow.jobs_until_saturation);
      ++slow_n;
    }
    if (fast.jobs_until_saturation) {
      fast_total += static_cast<double>(*fast.jobs_until_saturation);
      ++fast_n;
    }
  }
  ASSERT_GT(fast_n, 0);
  ASSERT_GT(slow_n, 0);
  EXPECT_LE(fast_total / fast_n, slow_total / slow_n);
}

TEST(IsolationSimTest, CoveragePropertyHoldsAcrossSeedsAndF) {
  for (std::size_t f : {1u, 2u}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const auto res = run_isolation_sim(base(f, 0.6, seed));
      EXPECT_TRUE(res.suspects_cover_observed_faulty)
          << "f=" << f << " seed=" << seed;
      EXPECT_EQ(res.true_faulty.size(), f);
    }
  }
}

TEST(IsolationSimTest, SuspicionTimelineConvergesToFaultyNodesOnly) {
  const auto res = run_isolation_sim(base(1, 0.8));
  ASSERT_FALSE(res.timeline.empty());
  // Eventually the High band contains exactly the truly faulty node.
  ASSERT_TRUE(res.high_band_exact_time.has_value());
  // And stays that way at the end of the run: the last snapshot has
  // exactly f High nodes.
  const auto& last = res.timeline.back();
  EXPECT_EQ(last.high, 1u);
}

TEST(IsolationSimTest, SaturationStopsSuspectGrowth) {
  // After |D| = f the suspect pool can only shrink (the Fig. 12 plateau).
  const auto res = run_isolation_sim(base(1, 0.7));
  ASSERT_TRUE(res.jobs_until_saturation.has_value());
  EXPECT_LE(res.final_suspects.size(), 30u);  // one job cluster at most
}

TEST(IsolationSimTest, DeterministicForFixedSeed) {
  const auto a = run_isolation_sim(base(1, 0.5, 9));
  const auto b = run_isolation_sim(base(1, 0.5, 9));
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.final_suspects, b.final_suspects);
  EXPECT_EQ(a.commission_observations, b.commission_observations);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
}

TEST(IsolationSimTest, JobMixRatiosRespectConfig) {
  // Indirect check: with only small jobs, far more jobs complete in the
  // same simulated horizon than with only large jobs.
  IsolationSimConfig small = base(1, 0.5);
  small.ratio_large = 0;
  small.ratio_medium = 0;
  small.ratio_small = 1;
  small.max_time = 50;
  small.max_completed_jobs = 100000;
  IsolationSimConfig large = small;
  large.ratio_large = 1;
  large.ratio_small = 0;
  const auto rs = run_isolation_sim(small);
  const auto rl = run_isolation_sim(large);
  EXPECT_GT(rs.jobs_completed, rl.jobs_completed * 2);
}

}  // namespace
}  // namespace clusterbft::sim
