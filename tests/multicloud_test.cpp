// Multi-cloud execution and cross-cloud failover (ISSUE 10).
//
// Contract under test, layer by layer:
//  * a MultiCloudSeam over ONE cloud is observationally bit-identical to
//    the LoopbackSeam (outputs, metrics, audit) — the multi-cloud seam
//    costs nothing when unused;
//  * kSingleCloud (the default) with several clouds attached keeps every
//    run in the lowest-id cloud and never fails over;
//  * kSpread round-robins the replica chains across clouds and still
//    promotes bytes equal to the reference interpreter;
//  * kCheapestFirst fills the cheapest advertised cloud;
//  * a whole-cloud outage under kSpread triggers a journaled
//    kCloudFailover: the disputed closure re-executes in a different
//    cloud, urgent, and the script completes with golden bytes;
//  * the same outage under kSingleCloud fails honestly with
//    kPoolExhausted (no silent migration off the pinned cloud);
//  * a slow cloud coming back online cannot double-commit a failed-over
//    run: the wrong-cloud guard plus run-id dedupe in the service keep
//    the healed cloud's pool untouched by the moved run.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "baseline/presets.hpp"
#include "cluster/cloud.hpp"
#include "cluster/fault_plan.hpp"
#include "common/wire.hpp"
#include "core/controller.hpp"
#include "core/graph_analyzer.hpp"
#include "core/journal.hpp"
#include "dataflow/interpreter.hpp"
#include "dataflow/parser.hpp"
#include "protocol/codec.hpp"
#include "protocol/multicloud.hpp"
#include "protocol/seam.hpp"
#include "workloads/scripts.hpp"
#include "workloads/weather.hpp"

namespace clusterbft::core {
namespace {

using cluster::Cloud;
using cluster::CloudProfile;
using cluster::FaultPlan;

constexpr const char* kInputPath = "weather/gsod";
constexpr const char* kOutputPath = "out/weather_hist";

dataflow::Relation weather_rows() {
  workloads::WeatherConfig wc;
  wc.num_stations = 30;
  wc.readings_per_station = 4;
  return workloads::generate_weather(wc);
}

std::map<std::string, dataflow::Relation> golden_outputs(
    const dataflow::Relation& rows) {
  const auto plan = dataflow::parse_script(workloads::weather_average_analysis());
  return dataflow::interpret(plan, {{kInputPath, rows}});
}

CloudProfile profile(std::string name, std::uint64_t seed,
                     std::uint64_t price_milli = 1000) {
  CloudProfile p;
  p.name = std::move(name);
  p.num_nodes = 10;
  p.slots_per_node = 3;
  p.seed = seed;
  p.price_milli = price_milli;
  return p;
}

ClientRequest request(const std::string& name, Placement placement) {
  ClientRequest req = baseline::cluster_bft(
      workloads::weather_average_analysis(), name, 1, 2, 1);
  req.placement = placement;
  req.verifier_timeout_s = 5.0;
  req.max_rerun_waves = 4;
  return req;
}

// ---- placement_order: pure-function policy checks --------------------

TEST(PlacementOrderTest, SingleCloudPicksTheLowestId) {
  const auto order = placement_order(
      Placement::kSingleCloud,
      {{2, 500, 4}, {0, 900, 4}, {1, 100, 4}});
  ASSERT_EQ(order, (std::vector<std::uint64_t>{0}));
}

TEST(PlacementOrderTest, SpreadKeepsIdOrder) {
  const auto order = placement_order(
      Placement::kSpread, {{2, 500, 4}, {0, 900, 4}, {1, 100, 4}});
  ASSERT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(PlacementOrderTest, CheapestFirstSortsByPriceThenId) {
  const auto order = placement_order(
      Placement::kCheapestFirst,
      {{0, 900, 4}, {1, 100, 4}, {2, 100, 4}, {3, 500, 4}});
  ASSERT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3, 0}));
}

TEST(PlacementOrderTest, CloudsWithoutHealthyNodesAreNoCandidates) {
  const auto order = placement_order(
      Placement::kSpread, {{0, 900, 0}, {1, 100, 3}});
  ASSERT_EQ(order, (std::vector<std::uint64_t>{1}));
  ASSERT_TRUE(
      placement_order(Placement::kSingleCloud, {{0, 1, 0}}).empty());
}

// ---- seam equivalence ------------------------------------------------

TEST(MultiCloudTest, OneCloudSeamIsBitIdenticalToLoopback) {
  const auto rows = weather_rows();
  const ClientRequest req = request("one", Placement::kSingleCloud);

  ScriptResult loopback_res;
  std::string loopback_audit;
  {
    cluster::EventSim sim;
    mapreduce::Dfs dfs(16384);
    dfs.write(kInputPath, rows);
    cluster::TrackerConfig cfg;
    cfg.num_nodes = 10;
    cfg.seed = 3;
    cluster::ExecutionTracker tracker(sim, dfs, cfg);
    protocol::LoopbackSeam seam(tracker);
    ClusterBft controller(sim, dfs, seam.transport, seam.programs);
    loopback_res = controller.execute(req);
    loopback_audit = controller.audit_log().to_string();
  }

  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  dfs.write(kInputPath, rows);
  Cloud cloud(0, sim, dfs, profile("alpha", 3));
  protocol::MultiCloudSeam seam({&cloud});
  ClusterBft controller(sim, dfs, seam.transport, seam.programs);
  const ScriptResult res = controller.execute(req);

  ASSERT_TRUE(res.verified);
  ASSERT_TRUE(loopback_res.verified);
  EXPECT_EQ(res.outputs.at(kOutputPath).sorted_rows(),
            loopback_res.outputs.at(kOutputPath).sorted_rows());
  EXPECT_EQ(res.metrics.runs, loopback_res.metrics.runs);
  EXPECT_EQ(res.metrics.waves, loopback_res.metrics.waves);
  EXPECT_EQ(res.metrics.digested, loopback_res.metrics.digested);
  EXPECT_EQ(res.metrics.cloud_failovers, 0u);
  EXPECT_EQ(res.verified_digest_hex, loopback_res.verified_digest_hex);
  EXPECT_EQ(controller.audit_log().to_string(), loopback_audit);
}

TEST(MultiCloudTest, SingleCloudPolicyWithThreeCloudsStaysHome) {
  const auto rows = weather_rows();
  const auto golden = golden_outputs(rows);

  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  dfs.write(kInputPath, rows);
  Cloud a(0, sim, dfs, profile("alpha", 3));
  Cloud b(1, sim, dfs, profile("beta", 4));
  Cloud c(2, sim, dfs, profile("gamma", 5));
  protocol::MultiCloudSeam seam({&a, &b, &c});
  ClusterBft controller(sim, dfs, seam.transport, seam.programs);
  const ScriptResult res =
      controller.execute(request("home", Placement::kSingleCloud));

  ASSERT_TRUE(res.verified);
  EXPECT_EQ(res.outputs.at(kOutputPath).sorted_rows(),
            golden.at(kOutputPath).sorted_rows());
  EXPECT_EQ(res.metrics.cloud_failovers, 0u);
  // Everything ran in the lowest-id cloud; the others never saw a run.
  EXPECT_GT(a.tracker().next_run_id(), 0u);
  EXPECT_EQ(b.tracker().next_run_id(), 0u);
  EXPECT_EQ(c.tracker().next_run_id(), 0u);
}

TEST(MultiCloudTest, SpreadPlacesChainsAcrossCloudsAndMatchesGolden) {
  const auto rows = weather_rows();
  const auto golden = golden_outputs(rows);

  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  dfs.write(kInputPath, rows);
  Cloud a(0, sim, dfs, profile("alpha", 3));
  Cloud b(1, sim, dfs, profile("beta", 4));
  protocol::MultiCloudSeam seam({&a, &b});
  ClusterBft controller(sim, dfs, seam.transport, seam.programs);
  const ScriptResult res =
      controller.execute(request("spread", Placement::kSpread));

  ASSERT_TRUE(res.verified);
  EXPECT_EQ(res.outputs.at(kOutputPath).sorted_rows(),
            golden.at(kOutputPath).sorted_rows());
  EXPECT_EQ(res.metrics.cloud_failovers, 0u);
  // r = 2: one chain per cloud.
  EXPECT_GT(a.tracker().next_run_id(), 0u);
  EXPECT_GT(b.tracker().next_run_id(), 0u);
}

TEST(MultiCloudTest, CheapestFirstFillsTheCheapestCloud) {
  const auto rows = weather_rows();
  const auto golden = golden_outputs(rows);

  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  dfs.write(kInputPath, rows);
  Cloud pricey(0, sim, dfs, profile("pricey", 3, 3000));
  Cloud cheap(1, sim, dfs, profile("cheap", 4, 1000));
  Cloud mid(2, sim, dfs, profile("mid", 5, 2000));
  protocol::MultiCloudSeam seam({&pricey, &cheap, &mid});
  ClusterBft controller(sim, dfs, seam.transport, seam.programs);
  const ScriptResult res =
      controller.execute(request("cheap", Placement::kCheapestFirst));

  ASSERT_TRUE(res.verified);
  EXPECT_EQ(res.outputs.at(kOutputPath).sorted_rows(),
            golden.at(kOutputPath).sorted_rows());
  EXPECT_GT(cheap.tracker().next_run_id(), 0u);
  EXPECT_EQ(pricey.tracker().next_run_id(), 0u);
  EXPECT_EQ(mid.tracker().next_run_id(), 0u);
}

// ---- failover --------------------------------------------------------

TEST(MultiCloudTest, FailoverCompletesUnderPermanentCloudOutage) {
  const auto rows = weather_rows();
  const auto golden = golden_outputs(rows);

  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  dfs.write(kInputPath, rows);
  Cloud a(0, sim, dfs, profile("alpha", 3));
  Cloud b(1, sim, dfs, profile("beta", 4));
  protocol::MultiCloudSeam seam({&a, &b});
  ClusterBft controller(sim, dfs, seam.transport, seam.programs);

  FaultPlan faults;
  faults.cloud_outages.push_back({0.05, 0 /* never heals */, 1});
  seam.arm(sim, faults);

  const ScriptResult res =
      controller.execute(request("outage", Placement::kSpread));

  ASSERT_TRUE(res.verified);
  EXPECT_EQ(res.outputs.at(kOutputPath).sorted_rows(),
            golden.at(kOutputPath).sorted_rows());
  EXPECT_GE(res.metrics.cloud_failovers, 1u);
  const auto failovers =
      controller.audit_log().events_of(AuditEvent::Kind::kCloudFailover);
  ASSERT_FALSE(failovers.empty());
  EXPECT_NE(failovers.front().detail.find("cloud 0"), std::string::npos);
}

TEST(MultiCloudTest, SingleCloudPolicyFailsHonestlyWhenHomeCloudDies) {
  const auto rows = weather_rows();

  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  dfs.write(kInputPath, rows);
  Cloud a(0, sim, dfs, profile("alpha", 3));
  Cloud b(1, sim, dfs, profile("beta", 4));
  protocol::MultiCloudSeam seam({&a, &b});
  ClusterBft controller(sim, dfs, seam.transport, seam.programs);

  FaultPlan faults;
  faults.cloud_outages.push_back({0.05, 0 /* never heals */, 0});
  seam.arm(sim, faults);

  const ScriptResult res =
      controller.execute(request("pinned", Placement::kSingleCloud));

  // The home cloud is pinned by policy: its death must surface as an
  // honest structured failure, never a silent migration to cloud 1.
  EXPECT_FALSE(res.verified);
  EXPECT_EQ(res.failure, FailureReason::kPoolExhausted);
  EXPECT_TRUE(res.outputs.empty());
  EXPECT_EQ(res.metrics.cloud_failovers, 0u);
  EXPECT_EQ(b.tracker().next_run_id(), 0u);
  EXPECT_FALSE(
      controller.audit_log().events_of(AuditEvent::Kind::kCloudDown).empty());
}

TEST(MultiCloudTest, HealedCloudCannotDoubleCommitFailedOverRun) {
  const auto rows = weather_rows();
  const auto golden = golden_outputs(rows);

  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  dfs.write(kInputPath, rows);
  Cloud a(0, sim, dfs, profile("alpha", 3));
  Cloud b(1, sim, dfs, profile("beta", 4));
  protocol::MultiCloudSeam seam({&a, &b});
  Journal journal;
  ClusterBft controller(sim, dfs, seam.transport, seam.programs, &journal);

  // Cloud 1 partitions mid-chain and heals AFTER the failover verified:
  // everything held on its link (stale completions both ways) flushes
  // back into a world that already moved on.
  FaultPlan faults;
  faults.cloud_outages.push_back({0.05, 30.0, 1});
  seam.arm(sim, faults);

  const ScriptResult res =
      controller.execute(request("heal", Placement::kSpread));
  sim.run();  // deliver the heal flush

  ASSERT_TRUE(res.verified);
  EXPECT_EQ(res.outputs.at(kOutputPath).sorted_rows(),
            golden.at(kOutputPath).sorted_rows());
  EXPECT_GE(res.metrics.cloud_failovers, 1u);

  // Walk the WAL. Pipelined execution means wave 1's (cloud 1, non-
  // urgent) dispatches can legitimately land after the failover record,
  // so the contract is about the DISPUTED closure, not every dispatch:
  // after the failover decision the disputed job re-dispatches urgent in
  // the target cloud and is never again offered to the cloud it left.
  bool saw_failover = false;
  std::uint64_t disputed_job = 0;
  std::uint64_t from_cloud = 0;
  std::uint64_t to_cloud = 0;
  std::size_t urgent_redispatches = 0;
  std::size_t cloud1_dispatches = 0;
  for (std::size_t i = 0; i < journal.size(); ++i) {
    const JournalRecord& rec = journal.at(i);
    if (rec.kind == RecordKind::kCloudFailover && !saw_failover) {
      saw_failover = true;
      common::WireReader rd(rec.payload.data(), rec.payload.size());
      disputed_job = rd.u64();
      from_cloud = rd.u64();
      to_cloud = rd.u64();
      continue;
    }
    if (rec.kind != RecordKind::kRunDispatched) continue;
    const auto m = protocol::decode(rec.payload);
    ASSERT_TRUE(m.has_value());
    const auto& submit = std::get<protocol::SubmitRun>(*m);
    if (submit.cloud == 1) ++cloud1_dispatches;
    if (saw_failover && submit.job_index == disputed_job) {
      EXPECT_NE(submit.cloud, from_cloud)
          << "disputed closure re-offered to the cloud it failed over "
             "away from";
      if (submit.cloud == to_cloud && submit.urgent == 1) {
        ++urgent_redispatches;
      }
    }
  }
  ASSERT_TRUE(saw_failover);
  EXPECT_EQ(from_cloud, 1u);
  EXPECT_EQ(to_cloud, 0u);
  ASSERT_GT(urgent_redispatches, 0u);
  // The healed cloud executed exactly the runs addressed to it — the
  // held dispatches flushed at heal ran once each, and the failed-over
  // run never ran there (wrong-cloud guard + run-id dedupe).
  EXPECT_EQ(b.tracker().next_run_id(), cloud1_dispatches);
}

// ---- degrade window --------------------------------------------------

TEST(MultiCloudTest, LatencyDegradedCloudStillVerifiesGoldenBytes) {
  const auto rows = weather_rows();
  const auto golden = golden_outputs(rows);

  cluster::EventSim sim;
  mapreduce::Dfs dfs(16384);
  dfs.write(kInputPath, rows);
  Cloud a(0, sim, dfs, profile("alpha", 3));
  Cloud b(1, sim, dfs, profile("beta", 4));
  protocol::MultiCloudSeam seam({&a, &b});
  ClusterBft controller(sim, dfs, seam.transport, seam.programs);

  FaultPlan faults;
  faults.cloud_degrades.push_back({0.0, 60.0, 1, 0.3});
  seam.arm(sim, faults);

  const ScriptResult res =
      controller.execute(request("slow", Placement::kSpread));
  sim.run();

  ASSERT_TRUE(res.verified);
  EXPECT_EQ(res.outputs.at(kOutputPath).sorted_rows(),
            golden.at(kOutputPath).sorted_rows());
}

}  // namespace
}  // namespace clusterbft::core
