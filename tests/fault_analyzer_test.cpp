// Fig. 7 fault-analyzer tests: the staged narrowing behaviour on
// hand-crafted scenarios, plus randomized property sweeps asserting the
// invariants the algorithm must preserve.
#include "core/fault_analyzer.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace clusterbft::core {
namespace {

using NodeSet = FaultAnalyzer::NodeSet;

TEST(FaultAnalyzerTest, RequiresPositiveF) {
  EXPECT_THROW(FaultAnalyzer(0), CheckError);
}

TEST(FaultAnalyzerTest, FirstObservationSaturatesForFOne) {
  FaultAnalyzer fa(1);
  EXPECT_FALSE(fa.saturated());
  fa.observe({1, 2, 3});
  EXPECT_TRUE(fa.saturated());
  EXPECT_EQ(fa.disjoint_sets().size(), 1u);
  EXPECT_EQ(fa.suspects(), (NodeSet{1, 2, 3}));
}

TEST(FaultAnalyzerTest, IntersectionNarrowsAfterSaturation) {
  FaultAnalyzer fa(1);
  fa.observe({1, 2, 3});
  // A second faulty cluster overlapping only in node 2: the fault must be
  // in the intersection.
  fa.observe({2, 7, 8});
  EXPECT_EQ(fa.suspects(), (NodeSet{2}));
}

TEST(FaultAnalyzerTest, SubsetSharpensDuringStageOne) {
  FaultAnalyzer fa(2);
  fa.observe({1, 2, 3, 4});
  EXPECT_FALSE(fa.saturated());
  // A subset of an existing disjoint set replaces it (sharper evidence).
  fa.observe({2, 3});
  EXPECT_FALSE(fa.saturated());
  ASSERT_EQ(fa.disjoint_sets().size(), 1u);
  EXPECT_EQ(fa.disjoint_sets()[0], (NodeSet{2, 3}));
  EXPECT_EQ(fa.overlapping_sets().size(), 1u);
}

TEST(FaultAnalyzerTest, DisjointSetsAccumulateUpToF) {
  FaultAnalyzer fa(2);
  fa.observe({1, 2});
  fa.observe({5, 6});
  EXPECT_TRUE(fa.saturated());
  EXPECT_EQ(fa.disjoint_sets().size(), 2u);
  // A third disjoint set is NOT added (|D| stays at f) — it can only
  // refine.
  fa.observe({9, 10});
  EXPECT_EQ(fa.disjoint_sets().size(), 2u);
}

TEST(FaultAnalyzerTest, RetroactiveRefinementAtSaturation) {
  FaultAnalyzer fa(2);
  // Overlapping evidence arrives before stage 1 saturates...
  fa.observe({1, 2, 3});
  fa.observe({2, 3, 4});  // overlaps -> O
  fa.observe({7, 8});     // second disjoint set -> saturation
  EXPECT_TRUE(fa.saturated());
  // ...and is replayed: {2,3,4} ∩ {1,2,3} = {2,3} shrinks the first set.
  EXPECT_EQ(fa.disjoint_sets()[0], (NodeSet{2, 3}));
}

TEST(FaultAnalyzerTest, AmbiguousIntersectionDoesNotRefine) {
  FaultAnalyzer fa(2);
  fa.observe({1, 2});
  fa.observe({5, 6});
  // Touches BOTH disjoint sets: no conclusion possible.
  fa.observe({2, 5});
  EXPECT_EQ(fa.disjoint_sets()[0], (NodeSet{1, 2}));
  EXPECT_EQ(fa.disjoint_sets()[1], (NodeSet{5, 6}));
}

TEST(FaultAnalyzerTest, EmptyObservationIgnored) {
  FaultAnalyzer fa(1);
  fa.observe({});
  EXPECT_FALSE(fa.saturated());
  EXPECT_EQ(fa.observations(), 0u);
}

TEST(FaultAnalyzerTest, SetFOnlyRaises) {
  FaultAnalyzer fa(2);
  fa.set_f(1);
  EXPECT_EQ(fa.f(), 2u);
  fa.set_f(3);
  EXPECT_EQ(fa.f(), 3u);
}

// ---- property sweep: a faulty node is never lost, and refinement
// eventually isolates it -------------------------------------------------

struct SweepParam {
  std::size_t f;
  std::size_t cluster_size;
  std::uint64_t seed;
};

class FaultAnalyzerSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FaultAnalyzerSweep, FaultyNodesStaySuspected) {
  const SweepParam p = GetParam();
  Rng rng(p.seed);
  const std::size_t num_nodes = 100;

  // Fix the truly faulty nodes.
  NodeSet faulty;
  while (faulty.size() < p.f) {
    faulty.insert(rng.next_below(num_nodes));
  }

  FaultAnalyzer fa(p.f);
  for (int round = 0; round < 200; ++round) {
    // Build a faulty cluster: one (random) truly faulty node + random
    // honest bystanders — exactly what a deviant job replica looks like.
    NodeSet cluster;
    auto it = faulty.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(
                         rng.next_below(faulty.size())));
    cluster.insert(*it);
    while (cluster.size() < p.cluster_size) {
      const auto n = rng.next_below(num_nodes);
      if (!faulty.count(n)) cluster.insert(n);  // bystanders are honest
    }
    fa.observe(cluster);

    // INVARIANT: every disjoint set contains at least one faulty node
    // (an observed cluster always does, and intersection refinement only
    // happens when the evidence pins the fault inside the intersection).
    if (fa.saturated()) {
      for (const NodeSet& d : fa.disjoint_sets()) {
        bool has_faulty = false;
        for (auto n : d) has_faulty |= faulty.count(n) > 0;
        EXPECT_TRUE(has_faulty) << "round " << round;
      }
    }
  }

  // After many observations the suspect pool is a small superset of the
  // faulty nodes.
  EXPECT_TRUE(fa.saturated());
  EXPECT_LE(fa.suspects().size(), p.f * p.cluster_size);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FaultAnalyzerSweep,
    ::testing::Values(SweepParam{1, 3, 11}, SweepParam{1, 8, 12},
                      SweepParam{2, 4, 13}, SweepParam{2, 10, 14},
                      SweepParam{3, 5, 15}, SweepParam{3, 12, 16}),
    [](const ::testing::TestParamInfo<SweepParam>& ti) {
      return "f" + std::to_string(ti.param.f) + "_c" +
             std::to_string(ti.param.cluster_size) + "_s" +
             std::to_string(ti.param.seed);
    });

TEST(FaultAnalyzerTest, HighCommissionProbabilityIsolatesQuickly) {
  // With clusters always containing the single faulty node 42, repeated
  // random bystanders shrink the suspect set to {42} fast.
  Rng rng(99);
  FaultAnalyzer fa(1);
  for (int i = 0; i < 20; ++i) {
    NodeSet cluster{42};
    while (cluster.size() < 6) cluster.insert(rng.next_below(200));
    fa.observe(cluster);
  }
  EXPECT_EQ(fa.suspects(), (NodeSet{42}));
}

}  // namespace
}  // namespace clusterbft::core
